"""In-process service tests: ticks, recovery bit-identity, HTTP, modes.

The daemon is driven directly (no subprocess, no service loop sleeps):
``tick()`` is called explicitly, "crashes" abandon the store without a
graceful close, and recovered state is compared digest-for-digest with
a never-crashed control — the in-process half of the chaos invariant
(:mod:`tests.test_serve_signals` covers the real-signal half).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import ServeConfig, ServeDaemon
from repro.serve.chaos import commit_digests, final_state
from repro.serve.config import ConfigMismatchError
from repro.serve.core import SimCore
from repro.serve.http import DegradedError
from repro.serve.jobspec import JobSpecError
from repro.serve.store import Store
from repro.sim.engine import SimulationError

#: Small, fast service workload (seconds-scale end to end).
CONFIG = ServeConfig(trace="venus", scheduler="fifo", jobs=20, seed=7,
                     batch=8, events_per_tick=64)
#: Tiny batching so a 6-job run spans enough ticks to crash mid-run.
RECOVERY_CONFIG = ServeConfig(trace="venus", scheduler="fifo", jobs=20,
                              seed=7, batch=1, events_per_tick=1)

SPEC = {
    "name": "resnet50", "user": "alice", "vc": "vc01",
    "gpu_num": 1, "duration": 600.0,
    "profile": {"gpu_util": 60.0, "gpu_mem_util": 30.0,
                "gpu_mem_mb": 12000.0},
}


def make_daemon(state_dir, config=CONFIG, **kwargs):
    kwargs.setdefault("durable", False)
    kwargs.setdefault("snapshot_every", 3)
    return ServeDaemon(str(state_dir), config, **kwargs)


def submit_n(daemon, n, **overrides):
    for index in range(n):
        daemon.submit(dict(SPEC, name=f"job{index}", **overrides))


def run_to_idle(daemon, limit=500):
    ticks = 0
    while daemon.tick():
        ticks += 1
        assert ticks < limit, "service never went idle"
    return ticks


def crash(daemon):
    """Abandon the daemon as a SIGKILL would: no drain, no clean flag."""
    daemon.wal.close()
    daemon.store.close()
    daemon._started = False  # neuter close() for the fixture teardown


# ----------------------------------------------------------------------
# The service tick
# ----------------------------------------------------------------------
class TestServiceTicks:
    def test_genesis_then_run_to_completion(self, tmp_path):
        with make_daemon(tmp_path) as daemon:
            assert daemon.recovery.genesis
            submit_n(daemon, 3)
            ticks = run_to_idle(daemon)
            assert ticks >= 1
            statuses = daemon.status()["jobs"]
            assert len(statuses) == 3
            assert all(row["status"] == "finished" for row in statuses)
            assert daemon.metrics()["jobs_finished"] == 3
        with Store(str(tmp_path)) as store:
            assert store.is_clean()
            assert len(store.jobs()) == 3

    def test_tick_is_idle_without_work(self, tmp_path):
        with make_daemon(tmp_path) as daemon:
            assert daemon.tick() is False

    def test_admission_is_journaled_before_applied(self, tmp_path):
        with make_daemon(tmp_path) as daemon:
            submit_n(daemon, 1)
            daemon.tick()
            wal = daemon.wal
            records = [r.rec for segment in wal.segments()
                       for r in wal.replay_segment(segment)]
        kinds = [rec["kind"] for rec in records]
        assert kinds.index("tick") < kinds.index("commit")
        tick_rec = records[kinds.index("tick")]
        # Full specs ride in the WAL: replay needs no inbox files.
        assert tick_rec["specs"][0]["name"] == "job0"
        assert daemon.inbox.pending(set()) == []  # consumed file deleted

    def test_rejected_wide_job_is_cataloged_as_rejection(self, tmp_path):
        with make_daemon(tmp_path) as daemon:
            with pytest.raises(JobSpecError, match="exceeds VC"):
                daemon.submit(dict(SPEC, gpu_num=10_000))
            # Unplaceable specs dropped straight into the inbox (no HTTP
            # validation) must be rejected at admission, not deadlock.
            daemon.inbox.submit(dict(SPEC, gpu_num=10_000),
                                daemon.core.consumed)
            daemon.tick()
            assert daemon.status()["jobs"] == []

    def test_restart_requires_matching_config(self, tmp_path):
        with make_daemon(tmp_path) as daemon:
            submit_n(daemon, 1)
            daemon.tick()
        other = ServeConfig(trace="venus", scheduler="lucid", jobs=20,
                            seed=7)
        with pytest.raises(ConfigMismatchError, match="scheduler"):
            make_daemon(tmp_path, config=other).start()

    def test_stored_config_used_when_none_requested(self, tmp_path):
        with make_daemon(tmp_path) as daemon:
            submit_n(daemon, 1)
            run_to_idle(daemon)
        with make_daemon(tmp_path, config=None) as daemon:
            assert daemon.core.config == CONFIG


# ----------------------------------------------------------------------
# Crash recovery (in-process)
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def _control(self, state_dir, jobs=6):
        with make_daemon(state_dir, config=RECOVERY_CONFIG) as daemon:
            submit_n(daemon, jobs)
            run_to_idle(daemon)
        return commit_digests(str(state_dir)), final_state(str(state_dir))

    def test_recovery_is_bit_identical_mid_run(self, tmp_path):
        digests, final = self._control(tmp_path / "control")
        assert len(digests) >= 5, "workload too small to crash mid-run"

        crashed = tmp_path / "crashed"
        daemon = make_daemon(crashed, config=RECOVERY_CONFIG)
        daemon.start()
        submit_n(daemon, 6)
        for _ in range(4):  # past snapshot_every=3: replay over snapshot
            daemon.tick()
        crash(daemon)
        with Store(str(crashed)) as store:
            assert not store.is_clean()

        revived = make_daemon(crashed, config=RECOVERY_CONFIG)
        report = revived.start()
        assert not report.genesis and not report.clean
        assert report.snapshot_tick == 3
        assert report.replayed_ticks >= 1
        # The recovered state equals the control's at the same tick …
        assert revived.core.tick == 4
        assert revived.core.digest() == digests[4]
        # … and the rest of the run stays on the control's rails.
        run_to_idle(revived)
        revived.close()
        assert commit_digests(str(crashed)) == digests
        trial_final = final_state(str(crashed))
        assert trial_final["digest"] == final["digest"]
        assert trial_final["clean"]

    def test_uncommitted_tick_is_reapplied_and_recommitted(self, tmp_path):
        digests, _ = self._control(tmp_path / "control")
        crashed = tmp_path / "crashed"
        daemon = make_daemon(crashed, config=RECOVERY_CONFIG)
        daemon.start()
        submit_n(daemon, 6)
        daemon.tick()
        # Journal tick 2 but crash before applying/committing it.
        items = daemon.inbox.poll(daemon.core.consumed,
                                  daemon.core.config.batch)
        daemon.wal.append(daemon._tick_record(2, items))
        crash(daemon)

        revived = make_daemon(crashed, config=RECOVERY_CONFIG)
        report = revived.start()
        assert report.recommitted
        assert revived.core.tick == 2
        assert revived.core.digest() == digests[2]
        revived.close()

    def test_torn_wal_tail_is_dropped_on_recovery(self, tmp_path):
        crashed = tmp_path / "crashed"
        daemon = make_daemon(crashed)
        daemon.start()
        submit_n(daemon, 2)
        daemon.tick()
        handle = daemon.wal._handle
        handle.write('{"seq": 99, "crc": 0,')  # torn mid-append
        crash(daemon)

        revived = make_daemon(crashed)
        report = revived.start()
        assert report.torn_records == 1
        assert revived.core.tick == 1
        revived.close()

    def test_clean_restart_replays_nothing(self, tmp_path):
        with make_daemon(tmp_path) as daemon:
            submit_n(daemon, 2)
            run_to_idle(daemon)
            tick = daemon.core.tick
        with make_daemon(tmp_path) as daemon:
            report = daemon.recovery
            assert report.clean and not report.genesis
            assert report.replayed_ticks == 0
            assert report.snapshot_tick == tick  # drain snapshotted


# ----------------------------------------------------------------------
# Degraded mode
# ----------------------------------------------------------------------
class TestDegradedMode:
    def _degrade(self, daemon, monkeypatch):
        submit_n(daemon, 1)
        monkeypatch.setattr(
            type(daemon.core.sim), "step_batch",
            lambda self: (_ for _ in ()).throw(SimulationError("boom")))
        assert daemon.tick()  # the failing tick still commits

    def test_simulation_error_degrades_not_kills(self, tmp_path,
                                                 monkeypatch):
        with make_daemon(tmp_path) as daemon:
            self._degrade(daemon, monkeypatch)
            assert daemon.core.degraded == "boom"
            assert daemon.tick() is False  # no further progress
            with pytest.raises(DegradedError):
                daemon.submit(dict(SPEC))
            healthy, detail = daemon.health()
            assert not healthy and detail["degraded"] == "boom"
            assert daemon.status()["degraded"] == "boom"  # reads serve on

    def test_degraded_flag_survives_recovery(self, tmp_path, monkeypatch):
        daemon = make_daemon(tmp_path)
        daemon.start()
        self._degrade(daemon, monkeypatch)
        crash(daemon)
        # The failure stays in place across the reboot (a deterministic
        # engine fault re-fires during replay), so recovery reaches the
        # identical degraded state the commit record certified.
        revived = make_daemon(tmp_path)
        revived.start()
        try:
            assert revived.core.degraded == "boom"
            assert revived.core.tick == 1
        finally:
            revived.close()


# ----------------------------------------------------------------------
# HTTP frontend
# ----------------------------------------------------------------------
def http_call(address, path, payload=None):
    host, port = address
    url = f"http://{host}:{port}{path}"
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method=(
        "POST" if data is not None else "GET"),
        # /metrics defaults to Prometheus text since the live-telemetry
        # plane landed; this helper always wants the JSON documents.
        headers={"Accept": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), \
                dict(response.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


class TestHttpFrontend:
    @pytest.fixture
    def served(self, tmp_path):
        with make_daemon(tmp_path, http_port=0, inbox_capacity=2) as daemon:
            yield daemon, daemon.http.address

    def test_submit_then_status_and_metrics(self, served):
        daemon, address = served
        code, body, _ = http_call(address, "/submit", dict(SPEC))
        assert code == 202 and body["status"] == "accepted"
        assert body["file"].endswith(".json")
        daemon.tick()
        code, body, _ = http_call(address, "/status")
        assert code == 200 and len(body["jobs"]) == 1
        code, body, _ = http_call(address, "/metrics")
        assert code == 200 and body["ticks"] == 1
        assert body["jobs_total"] == 1

    def test_healthz_ok_while_fresh(self, served):
        _, address = served
        code, body, _ = http_call(address, "/healthz")
        assert code == 200 and body["ok"]

    def test_bad_requests_are_400(self, served):
        _, address = served
        code, body, _ = http_call(address, "/submit",
                                  dict(SPEC, gpus="typo"))
        assert code == 400 and "unknown spec fields" in body["error"]
        code, body, _ = http_call(address, "/submit",
                                  dict(SPEC, vc="no-such-vc"))
        assert code == 400 and "unknown VC" in body["error"]
        code, _, _ = http_call(address, "/nowhere")
        assert code == 404

    def test_backpressure_is_429_with_retry_after(self, served):
        _, address = served
        assert http_call(address, "/submit", dict(SPEC))[0] == 202
        assert http_call(address, "/submit", dict(SPEC))[0] == 202
        code, body, headers = http_call(address, "/submit", dict(SPEC))
        assert code == 429
        assert "full" in body["error"]
        assert float(headers["Retry-After"]) > 0


# ----------------------------------------------------------------------
# Digest stability
# ----------------------------------------------------------------------
class TestDigest:
    def test_identical_histories_digest_identically(self):
        one, two = SimCore.genesis(CONFIG), SimCore.genesis(CONFIG)
        assert one.digest() == two.digest()
        for core in (one, two):
            core.admit_specs([dict(SPEC)], ["job-00000001.json"])
            core.advance()
        assert one.digest() == two.digest()

    def test_digest_tracks_state_changes(self):
        core = SimCore.genesis(CONFIG)
        before = core.digest()
        core.admit_specs([dict(SPEC)], ["job-00000001.json"])
        assert core.digest() != before

    def test_blob_round_trip_preserves_digest(self):
        core = SimCore.genesis(CONFIG)
        core.admit_specs([dict(SPEC)], ["job-00000001.json"])
        core.advance()
        clone = SimCore.from_blob(core.to_blob())
        assert clone.digest() == core.digest()
        assert clone.consumed == core.consumed
        assert clone.next_job_id == core.next_job_id
