"""Behavioural tests for the baseline schedulers."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.schedulers import (
    FIFOScheduler,
    HorusScheduler,
    QSSFScheduler,
    SJFScheduler,
    TiresiasScheduler,
)
from repro.schedulers.qssf import HistoryDurationModel
from repro.sim import Simulator
from repro.traces import TraceGenerator, VENUS

from conftest import make_job


def run(jobs, scheduler, nodes=1):
    cluster = Cluster.homogeneous(nodes, vc_name="vc1")
    return Simulator(cluster, jobs, scheduler).run()


def by_id(result):
    return {r.job_id: r for r in result.records}


class TestFIFO:
    def test_arrival_order_strict(self):
        # Node has 8 GPUs; job 1 takes all; jobs 2 (big) and 3 (small)
        # queue. FIFO must run 2 before 3 even though 3 would fit earlier.
        jobs = [
            make_job(1, duration=1000.0, gpu_num=8, submit_time=0.0),
            make_job(2, duration=100.0, gpu_num=8, submit_time=1.0),
            make_job(3, duration=100.0, gpu_num=1, submit_time=2.0),
        ]
        records = by_id(run(jobs, FIFOScheduler()))
        assert records[3].jct > records[2].jct  # 3 waited behind 2

    def test_vc_queues_independent(self):
        cluster = Cluster({"a": 1, "b": 1})
        jobs = [
            make_job(1, duration=1000.0, gpu_num=8, vc="a", submit_time=0.0),
            make_job(2, duration=100.0, gpu_num=8, vc="a", submit_time=1.0),
            make_job(3, duration=100.0, gpu_num=1, vc="b", submit_time=2.0),
        ]
        result = Simulator(cluster, jobs, FIFOScheduler()).run()
        records = by_id(result)
        assert records[3].queue_delay == pytest.approx(0.0)  # b unaffected


class TestSJF:
    def test_shortest_first(self):
        jobs = [
            make_job(1, duration=1000.0, gpu_num=8, submit_time=0.0),
            make_job(2, duration=5000.0, gpu_num=8, submit_time=1.0),
            make_job(3, duration=100.0, gpu_num=8, submit_time=2.0),
        ]
        records = by_id(run(jobs, SJFScheduler()))
        # Job 3 (shortest) runs before job 2 once job 1 finishes.
        finish = lambda r: r.submit_time + r.jct
        assert finish(records[3]) < finish(records[2])

    def test_beats_fifo_on_avg_jct(self, tiny_spec):
        def run_sched(scheduler):
            gen = TraceGenerator(tiny_spec)
            cluster = gen.build_cluster()
            return Simulator(cluster, gen.generate(), scheduler).run()

        assert run_sched(SJFScheduler()).avg_jct <= \
            run_sched(FIFOScheduler()).avg_jct


class TestQSSF:
    @pytest.fixture(scope="class")
    def data(self):
        gen = TraceGenerator(VENUS.with_jobs(400))
        return gen.generate_history(1.0), gen.generate()

    def test_duration_model_learns_recurrence(self, data):
        history, jobs = data
        model = HistoryDurationModel().fit(history)
        errors = []
        for job in jobs[:150]:
            pred = model.predict(job)
            errors.append(abs(np.log(pred) - np.log(job.duration)))
        assert np.median(errors) < 1.5  # within ~4.5x for half the jobs

    def test_requires_history(self):
        with pytest.raises(ValueError):
            HistoryDurationModel().fit([])

    def test_scheduler_orders_by_service(self, data):
        history, _ = data
        scheduler = QSSFScheduler(history)
        cluster = Cluster.homogeneous(1, vc_name="vc1")
        blocker = make_job(1, duration=500.0, gpu_num=8, submit_time=0.0,
                           vc="vc1")
        jobs = [blocker,
                make_job(2, duration=50.0, gpu_num=8, submit_time=1.0,
                         vc="vc1", name=history[0].name, user=history[0].user)]
        result = Simulator(cluster, jobs, scheduler).run()
        assert result.n_jobs == 2


class TestTiresias:
    def test_preempts_long_job_for_newcomers(self):
        # One node: a long job hogs it; a newcomer forces preemption at the
        # next reshuffle because the long job has more attained service.
        jobs = [
            make_job(1, duration=50_000.0, gpu_num=8, submit_time=0.0),
            make_job(2, duration=100.0, gpu_num=8, submit_time=30_000.0),
        ]
        result = run(jobs, TiresiasScheduler())
        records = by_id(result)
        assert records[1].preemptions >= 1
        # Short job finishes long before the long one.
        finish = lambda r: r.submit_time + r.jct
        assert finish(records[2]) < finish(records[1])

    def test_preemption_costs_queue_time(self):
        jobs = [
            make_job(1, duration=50_000.0, gpu_num=8, submit_time=0.0),
            make_job(2, duration=100.0, gpu_num=8, submit_time=30_000.0),
        ]
        records = by_id(run(jobs, TiresiasScheduler()))
        # 62 s restore overhead shows up as queue delay on resume.
        assert records[1].queue_delay >= 62.0

    def test_no_preemption_when_capacity_suffices(self):
        jobs = [make_job(i, duration=500.0, gpu_num=1, submit_time=0.0)
                for i in range(1, 5)]
        result = run(jobs, TiresiasScheduler())
        assert result.total_preemptions() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TiresiasScheduler(queue_threshold=-1)


class TestHorus:
    def test_packs_light_jobs(self):
        jobs = [
            make_job(1, duration=800.0, gpu_num=8, gpu_util=20.0,
                     submit_time=0.0),
            make_job(2, duration=800.0, gpu_num=8, gpu_util=20.0,
                     submit_time=1.0),
        ]
        result = run(jobs, HorusScheduler())
        assert result.utilization.gpu_shared > 0.0
        # Packing avoided serialization: both done well before 1600 s.
        assert result.makespan < 1200.0

    def test_respects_util_target(self):
        jobs = [
            make_job(1, duration=500.0, gpu_num=8, gpu_util=90.0,
                     submit_time=0.0),
            make_job(2, duration=500.0, gpu_num=8, gpu_util=90.0,
                     submit_time=1.0),
        ]
        result = run(jobs, HorusScheduler(util_target=100.0))
        # 90 + 90 > 100: no packing; jobs serialize on the single node.
        assert result.utilization.gpu_shared == 0.0
        assert result.makespan > 950.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HorusScheduler(util_target=0.0)
