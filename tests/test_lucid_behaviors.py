"""Focused behavioural tests of Lucid's control mechanisms."""

import numpy as np
import pytest

from repro import Simulator, TraceGenerator
from repro.core import LucidConfig, LucidScheduler
from repro.core.binder import PackingMode
from repro.traces import TraceSpec

BURSTY = TraceSpec(
    name="bursty", n_nodes=6, n_vcs=2, n_jobs=400, full_n_jobs=400,
    mean_duration=1200.0, span_days=0.5, n_users=16, seed=321,
)


def run(config=None, spec=BURSTY):
    generator = TraceGenerator(spec)
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    scheduler = LucidScheduler(history, config=config)
    result = Simulator(cluster, jobs, scheduler).run()
    return result, scheduler


class TestDeterminism:
    def test_same_seed_same_result(self):
        first, _ = run()
        second, _ = run()
        assert first.avg_jct == second.avg_jct
        assert first.avg_queue_delay == second.avg_queue_delay
        assert [r.jct for r in first.records] == \
            [r.jct for r in second.records]

    def test_config_seed_changes_measurements(self):
        first, _ = run(LucidConfig(seed=1))
        second, _ = run(LucidConfig(seed=2))
        # Measurement noise differs, so estimates (and usually outcomes)
        # differ; at minimum measured profiles must differ.
        assert first.avg_jct != second.avg_jct or \
            first.avg_queue_delay != second.avg_queue_delay


class TestTimeAwareScaling:
    def test_profiler_scales_up_under_burst(self):
        _, scheduler = run(LucidConfig(profiler_nodes=1,
                                       profiler_borrow_nodes=2))
        # With a 1-node profiler and bursty submissions, Time-aware
        # Scaling must have borrowed nodes at least once.
        assert scheduler.profiler is not None
        # The profiler either scaled up during the run (and possibly back
        # down); track by allowing both end states but requiring that
        # borrowing is possible and T_prof restored when not scaled.
        if not scheduler.profiler.scaled_up:
            assert scheduler.profiler.t_prof == pytest.approx(
                scheduler.profiler.base_t_prof)

    def test_scaling_disabled_keeps_base_capacity(self):
        _, scheduler = run(LucidConfig(time_aware_scaling=False,
                                       profiler_nodes=1))
        assert scheduler.profiler.active_nodes == 1
        assert not scheduler.profiler.scaled_up


class TestDynamicStrategy:
    def test_modes_respond_to_load(self):
        _, scheduler = run()
        modes = set(scheduler.mode_history)
        # A bursty trace with idle valleys must exercise several modes.
        assert len(modes) >= 2

    def test_dynamic_strategy_off_pins_default(self):
        _, scheduler = run(LucidConfig(dynamic_strategy=False))
        assert scheduler.mode_history == []
        assert scheduler.binder.mode is PackingMode.DEFAULT


class TestProfilerRouting:
    def test_large_jobs_never_enter_profiler(self):
        spec = TraceSpec(
            name="bigjobs", n_nodes=8, n_vcs=1, n_jobs=120,
            full_n_jobs=120, mean_duration=2000.0, span_days=0.3,
            n_users=8, seed=77,
        )
        result, scheduler = run(spec=spec)
        big = [r for r in result.records if r.gpu_num > scheduler.config.n_prof]
        assert all(not r.finished_in_profiler for r in big)

    def test_all_jobs_get_profiles_and_estimates(self):
        result, scheduler = run()
        # Every record carries a (measured) profile.
        assert all(r.profile is not None for r in result.records)


class TestUpdateEngineIntegration:
    def test_periodic_refits_happen(self):
        _, scheduler = run(LucidConfig(update_interval=6 * 3600.0))
        assert scheduler.update_engine.refits >= 1

    def test_refit_does_not_break_predictions(self):
        result, scheduler = run(LucidConfig(update_interval=6 * 3600.0))
        assert result.n_jobs == BURSTY.n_jobs
