"""Tests for encoders and time-series feature engineering."""

import numpy as np
import pytest

from repro.models.encoding import (
    LabelEncoder,
    hourly_series,
    rolling_mean,
    rolling_median,
    shift,
    soft_sum,
    throughput_feature_table,
    time_features,
)


class TestLabelEncoder:
    def test_roundtrip(self):
        enc = LabelEncoder().fit(["a", "b", "a", "c"])
        assert enc.transform(["a", "b", "c"]).tolist() == [0.0, 1.0, 2.0]
        assert len(enc) == 3

    def test_unknown_maps_to_dedicated_code(self):
        enc = LabelEncoder().fit(["a", "b"])
        assert enc.transform(["zzz"])[0] == enc.unknown_code

    def test_incremental_fit(self):
        enc = LabelEncoder().fit(["a"])
        enc.fit(["b"])
        assert enc.transform(["a", "b"]).tolist() == [0.0, 1.0]


class TestTimeFeatures:
    def test_hour_extraction(self):
        feats = time_features([0.0, 3600.0, 86_400.0 + 7200.0])
        assert feats["hour"].tolist() == [0.0, 1.0, 2.0]
        assert feats["day"].tolist() == [0.0, 0.0, 1.0]

    def test_dayofweek_cycles(self):
        feats = time_features([i * 86_400.0 for i in range(8)])
        dow = feats["dayofweek"]
        assert dow[0] == dow[7]
        assert len(set(dow[:7].tolist())) == 7


class TestRollingFeatures:
    def test_rolling_mean_causal(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        rolled = rolling_mean(values, window=2)
        # Index 2 sees values[0:2] only — never its own value.
        assert rolled[2] == pytest.approx(1.5)
        assert rolled[3] == pytest.approx(2.5)

    def test_rolling_median(self):
        values = np.array([1.0, 100.0, 2.0, 3.0])
        rolled = rolling_median(values, window=3)
        assert rolled[3] == pytest.approx(2.0)

    def test_shift(self):
        values = np.array([1.0, 2.0, 3.0])
        assert shift(values, 1).tolist() == [1.0, 1.0, 2.0]
        assert shift(values, 0).tolist() == [1.0, 2.0, 3.0]
        assert shift(values, 2, fill=0.0).tolist() == [0.0, 0.0, 1.0]

    def test_soft_sum_weights_recent_history_more(self):
        values = np.array([0.0, 10.0, 1.0, 0.0])
        soft = soft_sum(values, window=2, decay=0.5)
        # At t=3: 1*1 (t=2) + 10*0.5 (t=1) = 6
        assert soft[3] == pytest.approx(6.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            rolling_mean(np.ones(3), 0)
        with pytest.raises(ValueError):
            soft_sum(np.ones(3), 2, decay=0.0)
        with pytest.raises(ValueError):
            shift(np.ones(3), -1)


class TestThroughputTable:
    def test_feature_table_shape_and_names(self):
        series = np.arange(72, dtype=float)
        X, names = throughput_feature_table(series)
        assert X.shape == (72, len(names))
        for expected in ("hour", "shift_1h", "shift_1d", "roll_mean_1h",
                         "roll_median_1h", "soft_1h", "soft_3h", "soft_1d"):
            assert expected in names

    def test_features_are_causal(self):
        """Row t must not depend on series[t] (one-step-ahead protocol)."""
        rng = np.random.default_rng(0)
        series = rng.uniform(0, 10, 60)
        X1, names = throughput_feature_table(series)
        bumped = series.copy()
        bumped[30] += 100.0
        X2, _ = throughput_feature_table(bumped)
        assert np.allclose(X1[30], X2[30]), "row 30 saw its own value"
        assert not np.allclose(X1[31], X2[31])  # but the next row does


class TestHourlySeries:
    def test_counts_events(self):
        series, t0 = hourly_series([10.0, 20.0, 3700.0])
        assert t0 == 0.0
        assert series[0] == 2
        assert series[1] == 1

    def test_weights(self):
        series, _ = hourly_series([10.0, 20.0], weights=[4.0, 8.0])
        assert series[0] == pytest.approx(12.0)

    def test_empty(self):
        series, t0 = hourly_series([])
        assert series.tolist() == [0.0]

    def test_explicit_range(self):
        series, t0 = hourly_series([7200.0], start_time=0.0, end_time=10_800.0)
        assert t0 == 0.0
        assert len(series) >= 3
        assert series[2] == 1

    def test_weight_alignment_checked(self):
        with pytest.raises(ValueError):
            hourly_series([1.0, 2.0], weights=[1.0])
