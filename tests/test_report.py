"""Tests for report formatting and the event queue."""

import pytest

from repro.analysis.report import (
    ascii_table,
    cdf_summary,
    comparison_table,
    format_cell,
)
from repro.sim.events import Event, EventKind, EventQueue


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_float_precision(self):
        assert format_cell(3.14159) == "3.14"
        assert format_cell(3.14159, precision=4) == "3.1416"

    def test_large_float_grouping(self):
        assert format_cell(123456.7) == "123,457"

    def test_nan(self):
        assert format_cell(float("nan")) == "-"

    def test_string_and_int(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestAsciiTable:
    def test_alignment(self):
        table = ascii_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # uniform width

    def test_title(self):
        table = ascii_table(["x"], [[1]], title="Title")
        assert table.splitlines()[0] == "Title"

    def test_empty_rows(self):
        table = ascii_table(["x", "y"], [])
        assert "x" in table and "y" in table


class TestComparisonTable:
    def test_normalization(self):
        paper = {"a": 10.0, "b": 20.0}
        measured = {"a": 1.0, "b": 3.0}
        table = comparison_table("m", paper, measured)
        assert "2.00" in table  # paper b/best
        assert "3.00" in table  # measured b/best

    def test_zero_best_guarded(self):
        paper = {"a": 0.0, "b": 1.0}
        measured = {"a": 0.0, "b": 1.0}
        table = comparison_table("m", paper, measured)
        assert "-" in table  # ratios suppressed, no division explosion

    def test_key_intersection(self):
        table = comparison_table("m", {"a": 1.0, "zzz": 2.0}, {"a": 1.0})
        assert "zzz" not in table


class TestCdfSummary:
    def test_sampling(self):
        xs = [1.0, 2.0, 3.0]
        cdf = [0.1, 0.5, 1.0]
        out = cdf_summary(xs, cdf, [2.5, 3.0])
        assert out[2.5] == 0.5
        assert out[3.0] == 1.0


class TestEventQueue:
    def test_ordering_by_time(self):
        q = EventQueue()
        q.push(5.0, EventKind.TICK)
        q.push(1.0, EventKind.SUBMIT, job_id=1)
        q.push(3.0, EventKind.FINISH, job_id=2)
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_fifo_tiebreak(self):
        q = EventQueue()
        first = q.push(1.0, EventKind.SUBMIT, job_id=1)
        second = q.push(1.0, EventKind.SUBMIT, job_id=2)
        assert q.pop() is first
        assert q.pop() is second

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7.0, EventKind.TICK)
        assert q.peek_time() == 7.0
        assert len(q) == 1

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, EventKind.TICK)
        assert q
