"""Tests for the structured-event tracer and its engine wiring."""

import json

import pytest

from repro.cluster import Cluster
from repro.obs import (
    NULL_TRACER,
    RingBufferTracer,
    TraceEvent,
    events_from_dicts,
    read_jsonl,
)
from repro.schedulers import FIFOScheduler
from repro.sim import Simulator
from repro.traces import TraceGenerator, TraceSpec

from conftest import make_job


def _spec(n_jobs=60, seed=11):
    return TraceSpec(name="tiny", n_nodes=4, n_vcs=2, n_jobs=n_jobs,
                     full_n_jobs=n_jobs, mean_duration=1200.0,
                     span_days=0.25, n_users=8, seed=seed)


def _run_fifo(tracer=None, n_jobs=60):
    generator = TraceGenerator(_spec(n_jobs=n_jobs))
    cluster = generator.build_cluster()
    jobs = generator.generate()
    sim = Simulator(cluster, jobs, FIFOScheduler(), tracer=tracer)
    return sim.run(), sim


class TestRingBufferTracer:
    def test_emits_and_queries(self):
        tracer = RingBufferTracer(capacity=10)
        tracer.emit(1.0, "submit", 7, vc="vc1")
        tracer.emit(2.0, "start", 7, gpus=[0, 1])
        assert tracer.n_emitted == 2
        assert [e.kind for e in tracer.events_of(7)] == ["submit", "start"]
        assert tracer.counts_by_kind() == {"submit": 1, "start": 1}

    def test_ring_eviction(self):
        tracer = RingBufferTracer(capacity=3)
        for i in range(5):
            tracer.emit(float(i), "submit", i)
        assert tracer.n_emitted == 5
        assert [e.job_id for e in tracer.events] == [2, 3, 4]

    def test_drop_count_on_overflow(self):
        tracer = RingBufferTracer(capacity=5)
        for i in range(3):
            tracer.emit(float(i), "submit", i)
        assert tracer.n_dropped == 0
        for i in range(3, 8):
            tracer.emit(float(i), "submit", i)
        # 8 emitted into a 5-slot ring: the 3 oldest were dropped.
        assert tracer.n_dropped == 3
        assert tracer.n_emitted == 8
        assert len(tracer.events) == 5

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with RingBufferTracer(sink=path) as tracer:
            tracer.emit(0.5, "submit", 1, vc="vc1")
            tracer.emit(1.5, "start", 1, gpus=[3], nodes=[0])
        records = read_jsonl(path)
        assert len(records) == 2
        events = events_from_dicts(records)
        assert events[0] == TraceEvent(0.5, "submit", 1, {"vc": "vc1"})
        assert events[1].data["gpus"] == [3]

    def test_sink_creates_parent_dirs_and_renames_atomically(self,
                                                             tmp_path):
        path = tmp_path / "deep" / "nested" / "events.jsonl"
        tracer = RingBufferTracer(sink=str(path))
        tracer.emit(0.5, "submit", 1)
        # Mid-run the data lives in the temp file, not the final path.
        assert not path.exists()
        assert path.with_name(path.name + ".tmp").exists()
        tracer.close()
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()
        assert len(read_jsonl(str(path))) == 1

    def test_unused_sink_writes_nothing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = RingBufferTracer(sink=str(path))
        tracer.close()  # no emits: neither file should appear
        assert list(tmp_path.iterdir()) == []


class TestEngineTracing:
    def test_fifo_round_trip_and_ordering(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tracer = RingBufferTracer(sink=path)
        result, _ = _run_fifo(tracer=tracer)
        tracer.close()

        records = read_jsonl(path)
        assert len(records) == tracer.n_emitted
        # JSONL preserves emission order, which is time-ordered.
        times = [r["t"] for r in records]
        assert times == sorted(times)

        # Every job's lifecycle is ordered submit -> sched_submit ->
        # start -> finish, and every finished job is fully covered.
        by_job = {}
        for record in records:
            if "job_id" in record:
                by_job.setdefault(record["job_id"], []).append(record["kind"])
        assert len(by_job) == len(result.records)
        for kinds in by_job.values():
            assert kinds.index("submit") < kinds.index("start")
            assert kinds.index("start") < kinds.index("finish")
            assert kinds[-1] in ("finish", "sched_finish")

        # Telemetry metrics agree with the simulation outcome.
        metrics = result.telemetry.metrics
        assert metrics["jobs_submitted"] == len(result.records)
        assert metrics["jobs_finished"] == len(result.records)
        assert metrics["schedule_seconds"]["count"] > 0

    def test_start_events_carry_gpu_sets(self):
        tracer = RingBufferTracer()
        result, sim = _run_fifo(tracer=tracer)
        for event in tracer.of_kind("start"):
            assert len(event.data["gpus"]) >= 1
            assert len(event.data["gpus"]) == len(event.data["nodes"])

    def test_disabled_tracer_changes_no_result_field(self):
        baseline, _ = _run_fifo(tracer=None)
        nulled, _ = _run_fifo(tracer=NULL_TRACER)
        traced, _ = _run_fifo(tracer=RingBufferTracer())

        for other in (nulled, traced):
            assert other.makespan == baseline.makespan
            assert other.utilization == baseline.utilization
            assert len(other.records) == len(baseline.records)
            for a, b in zip(baseline.records, other.records):
                assert (a.job_id, a.jct, a.queue_delay, a.preemptions) == \
                       (b.job_id, b.jct, b.queue_delay, b.preemptions)
        # The determinism guard: no telemetry object unless traced.
        assert baseline.telemetry is None
        assert nulled.telemetry is None
        assert traced.telemetry is not None

    def test_dropped_events_surface_on_telemetry(self):
        # A roomy buffer loses nothing; a tiny one reports its losses.
        roomy, _ = _run_fifo(tracer=RingBufferTracer())
        assert roomy.telemetry.dropped_events == 0
        tight_tracer = RingBufferTracer(capacity=16)
        tight, _ = _run_fifo(tracer=tight_tracer)
        assert tight.telemetry.dropped_events == tight_tracer.n_dropped
        assert tight.telemetry.dropped_events == \
            tight_tracer.n_emitted - len(tight_tracer.events)
        assert tight.telemetry.dropped_events > 0


class TestMaxEventsCounting:
    """The livelock valve counts every dispatched event (satellite fix)."""

    class _Greedy(FIFOScheduler):
        name = "greedy"

        def schedule(self, now):
            for job in list(self.queue):
                if self.try_place_exclusive(job):
                    self.queue.remove(job)

    def _jobs(self, n=10):
        # All submitted simultaneously: the seed engine drained them in
        # the inner loop and counted the whole batch as ONE event.
        return [make_job(i, duration=100.0 * i, submit_time=0.0)
                for i in range(1, n + 1)]

    def test_counts_every_dispatch(self):
        cluster = Cluster({"vc1": 2})  # 16 GPUs: all 10 jobs fit at once
        sim = Simulator(cluster, self._jobs(), self._Greedy())
        sim.run()
        # 10 submits (one simultaneous batch) + 10 distinct finishes.
        assert sim._events_processed == 20

    def test_valve_sees_batched_events(self):
        cluster = Cluster({"vc1": 2})
        sim = Simulator(cluster, self._jobs(), self._Greedy(),
                        max_events=15)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run()
