"""Tests for the fixed-interval cluster time-series collector."""

import csv
import json

import pytest

from repro.cluster import Cluster
from repro.obs import SERIES_SCHEMA, SeriesCollector
from repro.schedulers import FIFOScheduler
from repro.sim import Simulator
from repro.traces import TraceGenerator

from conftest import make_job


def _run(jobs, interval, cluster=None):
    collector = SeriesCollector(interval=interval)
    sim = Simulator(cluster or Cluster({"vc1": 1}), jobs, FIFOScheduler(),
                    series=collector)
    result = sim.run()
    return collector, result


class TestSamplingSemantics:
    def test_piecewise_constant_between_batches(self):
        # One job running over [0, 250): grid points 0/100/200 see it
        # running, the trailing partial sample at makespan sees it done.
        collector, result = _run([make_job(1, duration=250.0)],
                                 interval=100.0)
        times = [s.time for s in collector.samples]
        assert times == [0.0, 100.0, 200.0, pytest.approx(result.makespan)]
        assert [s.running_jobs for s in collector.samples] == [1, 1, 1, 0]
        assert [s.gpus_busy for s in collector.samples][:3] == [1, 1, 1]
        assert collector.samples[-1].gpus_busy == 0

    def test_quiet_gaps_repeat_the_held_state(self):
        # Nothing happens between 0 and the finish: every interior grid
        # point replays the state the t=0 batch left behind.
        collector, _ = _run([make_job(1, duration=1000.0)], interval=100.0)
        interior = [s for s in collector.samples if 0 < s.time < 1000.0]
        assert len(interior) == 9
        assert all(s.running_jobs == 1 for s in interior)
        assert all(s.gpu_alloc == interior[0].gpu_alloc for s in interior)

    def test_simultaneous_events_sample_settled_state(self):
        # Two finishes land exactly on the t=200 grid point as one
        # simultaneous batch (distinct Event.seq values).  The sample at
        # 200 must be emitted once and reflect the state after BOTH
        # events and the follow-up scheduler pass — never a half-drained
        # batch, regardless of intra-batch ordering.
        collector, result = _run([make_job(1, duration=200.0),
                                  make_job(2, duration=200.0)],
                                 interval=200.0)
        assert result.makespan == pytest.approx(200.0)
        at_200 = [s for s in collector.samples if s.time == 200.0]
        assert len(at_200) == 1
        assert at_200[0].running_jobs == 0
        assert at_200[0].gpus_busy == 0
        # The t=0 sample is also post-batch: both jobs already placed.
        assert collector.samples[0].time == 0.0
        assert collector.samples[0].running_jobs == 2

    def test_pending_queue_split_by_vc(self):
        # vc1 and vc2 each run one 8-GPU job; a second vc2 job waits
        # until its VC frees up at t=500, so every sample before then
        # shows it pending on vc2's queue and none on vc1's.
        cluster = Cluster({"vc1": 1, "vc2": 1})
        jobs = [make_job(1, duration=500.0, gpu_num=8, vc="vc1"),
                make_job(2, duration=500.0, gpu_num=8, vc="vc2"),
                make_job(3, duration=300.0, gpu_num=8, vc="vc2")]
        collector, _ = _run(jobs, interval=100.0, cluster=cluster)
        waiting = [s for s in collector.samples if s.time < 500.0]
        assert waiting
        for sample in waiting:
            assert set(sample.queue_by_vc) == {"vc1", "vc2"}
            assert sample.queue_by_vc == {"vc1": 0, "vc2": 1}
            assert sample.pending_jobs == 1
        after = [s for s in collector.samples if s.time >= 500.0]
        assert all(s.pending_jobs == 0 for s in after)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SeriesCollector(interval=0.0)

    def test_single_use_guard(self):
        collector, _ = _run([make_job(1, duration=100.0)], interval=50.0)
        with pytest.raises(RuntimeError, match="single-use"):
            Simulator(Cluster({"vc1": 1}), [make_job(1, duration=100.0)],
                      FIFOScheduler(), series=collector)


class TestExport:
    def _collected(self, tiny_spec):
        generator = TraceGenerator(tiny_spec)
        collector = SeriesCollector(interval=600.0)
        Simulator(generator.build_cluster(), generator.generate(),
                  FIFOScheduler(), series=collector).run()
        return collector

    def test_columns_and_rows_agree(self, tiny_spec):
        collector = self._collected(tiny_spec)
        columns = collector.columns()
        assert columns[0] == "time"
        assert any(c.startswith("queue_") for c in columns)
        for row in collector.rows():
            assert set(row) == set(columns)

    def test_csv_round_trip(self, tiny_spec, tmp_path):
        collector = self._collected(tiny_spec)
        path = str(tmp_path / "series.csv")
        n = collector.to_csv(path)
        assert n == len(collector.samples)
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == n
        assert [float(r["time"]) for r in rows] == \
            [s.time for s in collector.samples]
        assert [int(r["running_jobs"]) for r in rows] == \
            [s.running_jobs for s in collector.samples]

    def test_json_round_trip(self, tiny_spec, tmp_path):
        collector = self._collected(tiny_spec)
        path = str(tmp_path / "series.json")
        document = collector.to_json(path)
        assert document["schema"] == SERIES_SCHEMA
        assert document["interval"] == 600.0
        on_disk = json.loads(open(path).read())
        assert on_disk == document
        assert len(document["samples"]) == len(collector.samples)
