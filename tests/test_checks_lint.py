"""Determinism linter tests: one positive + one negative fixture per rule.

Each RPR rule gets a minimal snippet that must trigger it and a close
sibling that must not, plus suppression, formatting and an end-to-end
"the real tree is clean" check.
"""

from __future__ import annotations

import json
import os
import textwrap

import pytest

from repro.checks import (
    RULES,
    Finding,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)

#: A module path inside a simulation package (RPR001/2/3/4/8 in scope).
SIM_PATH = os.path.join("src", "repro", "sim", "fixture.py")
#: A module path outside every scoped package (only RPR005/7 apply).
UTIL_PATH = os.path.join("src", "repro", "utils", "fixture.py")


def lint(code: str, path: str = SIM_PATH):
    return lint_source(textwrap.dedent(code), path)


def codes(findings):
    return [f.code for f in findings]


class TestRPR001GlobalRNG:
    def test_stdlib_random_flagged(self):
        found = lint("""\
            import random
            def pick(jobs):
                return random.choice(jobs)
        """)
        assert codes(found) == ["RPR001"]
        assert "global stdlib RNG" in found[0].message

    def test_from_import_flagged(self):
        found = lint("""\
            from random import shuffle
            def mix(jobs):
                shuffle(jobs)
        """)
        assert codes(found) == ["RPR001"]

    def test_np_random_convenience_flagged(self):
        found = lint("""\
            import numpy as np
            def draw_rate():
                return np.random.uniform(0.0, 1.0)
        """)
        assert codes(found) == ["RPR001"]

    def test_unseeded_default_rng_flagged(self):
        found = lint("""\
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert codes(found) == ["RPR001"]
        assert "entropy-seeded" in found[0].message

    def test_injected_generator_clean(self):
        found = lint("""\
            import numpy as np
            def pick(jobs, rng: np.random.Generator):
                return jobs[rng.integers(len(jobs))]
            rng = np.random.default_rng(42)
        """)
        assert found == []

    def test_out_of_scope_path_clean(self):
        found = lint("""\
            import random
            def pick(jobs):
                return random.choice(jobs)
        """, path=UTIL_PATH)
        assert found == []


class TestRPR002WallClock:
    def test_time_time_flagged(self):
        found = lint("""\
            import time
            def stamp():
                return time.time()
        """)
        assert codes(found) == ["RPR002"]
        assert "wall clock" in found[0].message

    def test_from_import_monotonic_flagged(self):
        found = lint("""\
            from time import monotonic
            def stamp():
                return monotonic()
        """)
        assert codes(found) == ["RPR002"]

    def test_datetime_now_flagged(self):
        found = lint("""\
            from datetime import datetime
            def stamp():
                return datetime.now()
        """)
        assert codes(found) == ["RPR002"]

    def test_engine_clock_clean(self):
        found = lint("""\
            def stamp(engine):
                return engine.now
        """)
        assert found == []

    def test_time_sleep_clean(self):
        # sleep does not *read* the clock; only reads are banned.
        found = lint("""\
            import time
            def pause():
                time.sleep(0.1)
        """)
        assert found == []


class TestRPR002Allowlist:
    """Structured instrumentation allowlist instead of per-line noqa."""

    CLOCK_READ = """\
        import time
        def {name}(self):
            return time.perf_counter()
    """

    def test_allowlisted_module_fully_exempt(self):
        # obs/prof.py is the self-profiler: any function may read the
        # wall clock without a noqa comment.
        found = lint(textwrap.dedent(self.CLOCK_READ).format(name="enter"),
                     path=os.path.join("src", "repro", "obs", "prof.py"))
        assert found == []

    def test_engine_exempt_only_inside_named_function(self):
        path = os.path.join("src", "repro", "sim", "engine.py")
        found = lint(
            textwrap.dedent(self.CLOCK_READ).format(name="_invoke_scheduler"),
            path=path)
        assert found == []
        found = lint(
            textwrap.dedent(self.CLOCK_READ).format(name="_dispatch"),
            path=path)
        assert codes(found) == ["RPR002"]

    def test_module_level_read_not_exempt_by_function_list(self):
        # A per-function allowlist never exempts module-level reads.
        found = lint("""\
            import time
            STARTED = time.perf_counter()
        """, path=os.path.join("src", "repro", "sim", "engine.py"))
        assert codes(found) == ["RPR002"]

    def test_other_sim_modules_still_flagged(self):
        found = lint(
            textwrap.dedent(self.CLOCK_READ).format(name="_invoke_scheduler"),
            path=SIM_PATH)
        assert codes(found) == ["RPR002"]

    def test_allowlist_shape(self):
        from repro.checks import RPR002_ALLOWLIST
        assert RPR002_ALLOWLIST["obs/prof.py"] is None
        assert "_invoke_scheduler" in RPR002_ALLOWLIST["sim/engine.py"]

    def test_engine_source_has_no_rpr002_noqa_left(self):
        # The satellite migration: the engine's clock reads are covered
        # by the allowlist, not per-line escapes.
        engine = os.path.join(repo_root(), "src", "repro", "sim",
                              "engine.py")
        assert "noqa RPR002" not in open(engine).read()


class TestRPR003UnorderedIteration:
    def test_set_literal_iteration_flagged(self):
        found = lint("""\
            def place(a, b):
                for node in {a, b}:
                    yield node
        """)
        assert codes(found) == ["RPR003"]

    def test_set_variable_iteration_flagged(self):
        found = lint("""\
            def place(jobs):
                pending = set(jobs)
                for job in pending:
                    yield job
        """)
        assert codes(found) == ["RPR003"]

    def test_dict_view_comprehension_flagged(self):
        found = lint("""\
            def capacities(vcs):
                return [vc.n_gpus for vc in vcs.values()]
        """)
        assert codes(found) == ["RPR003"]
        assert "dict view" in found[0].message

    def test_set_algebra_flagged(self):
        found = lint("""\
            def diff(before, after):
                before = set(before)
                for job in before - set(after):
                    yield job
        """)
        assert codes(found) == ["RPR003"]

    def test_sorted_wrapper_clean(self):
        found = lint("""\
            def place(jobs, vcs):
                for job in sorted(set(jobs)):
                    yield job
                for name in sorted(vcs.keys()):
                    yield name
        """)
        assert found == []

    def test_membership_test_clean(self):
        # Using a set for O(1) membership is fine; only iteration is flagged.
        found = lint("""\
            def filter_jobs(jobs, banned):
                banned = set(banned)
                return [j for j in jobs if j not in banned]
        """)
        assert found == []


class TestRPR004FloatTimeEquality:
    def test_equality_on_time_flagged(self):
        found = lint("""\
            def due(event, now):
                return event.finish_time == now
        """)
        assert codes(found) == ["RPR004"]

    def test_inequality_clean(self):
        found = lint("""\
            EPS = 1e-6
            def due(event, now):
                return event.finish_time <= now + EPS
        """)
        assert found == []

    def test_string_comparison_clean(self):
        # Status tags named like time fields are identity checks, not floats.
        found = lint("""\
            def is_start(timestamp):
                return timestamp == "start"
        """)
        assert found == []


class TestRPR005MutableDefault:
    def test_list_default_flagged(self):
        found = lint("""\
            def submit(job, queue=[]):
                queue.append(job)
        """, path=UTIL_PATH)
        assert codes(found) == ["RPR005"]

    def test_dict_call_default_flagged(self):
        found = lint("""\
            def submit(job, index=dict()):
                index[job] = True
        """, path=UTIL_PATH)
        assert codes(found) == ["RPR005"]

    def test_none_default_clean(self):
        found = lint("""\
            def submit(job, queue=None):
                queue = [] if queue is None else queue
                queue.append(job)
        """, path=UTIL_PATH)
        assert found == []


class TestRPR006EventKindExhaustiveness:
    EVENTS = textwrap.dedent("""\
        import enum
        class EventKind(enum.Enum):
            SUBMIT = "submit"
            FINISH = "finish"
            NODE_FAIL = "node_fail"
    """)

    @staticmethod
    def _tree(tmp_path, engine_body: str, timeline_body: str):
        sim = tmp_path / "sim"
        obs = tmp_path / "obs"
        sim.mkdir()
        obs.mkdir()
        events = sim / "events.py"
        events.write_text(TestRPR006EventKindExhaustiveness.EVENTS)
        (sim / "engine.py").write_text(textwrap.dedent(engine_body))
        (obs / "timeline.py").write_text(textwrap.dedent(timeline_body))
        return str(events)

    def test_exhaustive_tree_clean(self, tmp_path):
        events = self._tree(tmp_path, """\
            from events import EventKind
            DISPATCH = (EventKind.SUBMIT, EventKind.FINISH,
                        EventKind.NODE_FAIL)
        """, """\
            EVENT_KIND_TRACKS = {"submit": "scheduler", "finish": "gpu",
                                 "node_fail": "fault"}
        """)
        assert lint_paths([events]) == []

    def test_undispatched_member_flagged(self, tmp_path):
        events = self._tree(tmp_path, """\
            from events import EventKind
            DISPATCH = (EventKind.SUBMIT, EventKind.FINISH)
        """, """\
            EVENT_KIND_TRACKS = {"submit": "scheduler", "finish": "gpu",
                                 "node_fail": "fault"}
        """)
        found = lint_paths([events])
        assert codes(found) == ["RPR006"]
        assert "NODE_FAIL" in found[0].message
        assert "never dispatched" in found[0].message

    def test_missing_track_flagged(self, tmp_path):
        events = self._tree(tmp_path, """\
            from events import EventKind
            DISPATCH = (EventKind.SUBMIT, EventKind.FINISH,
                        EventKind.NODE_FAIL)
        """, """\
            EVENT_KIND_TRACKS = {"submit": "scheduler", "finish": "gpu"}
        """)
        found = lint_paths([events])
        assert codes(found) == ["RPR006"]
        assert "no track" in found[0].message


class TestRPR007OverbroadExcept:
    def test_bare_except_flagged(self):
        found = lint("""\
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
        """, path=UTIL_PATH)
        assert codes(found) == ["RPR007"]

    def test_except_exception_flagged(self):
        found = lint("""\
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    return None
        """, path=UTIL_PATH)
        assert codes(found) == ["RPR007"]

    def test_reraise_clean(self):
        found = lint("""\
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    cleanup = True
                    raise
        """, path=UTIL_PATH)
        assert found == []

    def test_specific_exception_clean(self):
        found = lint("""\
            def load(path):
                try:
                    return open(path).read()
                except OSError:
                    return None
        """, path=UTIL_PATH)
        assert found == []


class TestRPR008SeedThreading:
    def test_unseedable_entrypoint_flagged(self):
        found = lint("""\
            def generate_trace(n_jobs):
                return list(range(n_jobs))
        """)
        assert codes(found) == ["RPR008"]
        assert "generate_trace" in found[0].message

    def test_seed_param_clean(self):
        found = lint("""\
            def generate_trace(n_jobs, seed=0):
                return list(range(n_jobs))
        """)
        assert found == []

    def test_spec_param_clean(self):
        # Repo idiom: a *Spec object carries its own seed.
        found = lint("""\
            def generate_trace(spec):
                return list(range(spec.n_jobs))
        """)
        assert found == []

    def test_method_not_flagged(self):
        found = lint("""\
            class TraceGenerator:
                def generate(self):
                    return []
        """)
        assert found == []

    def test_private_helper_not_flagged(self):
        found = lint("""\
            def _generate_batch(n):
                return list(range(n))
        """)
        assert found == []


class TestRPR009RawStateWrites:
    SERVE_PATH = os.path.join("src", "repro", "serve", "fixture.py")
    OBS_PATH = os.path.join("src", "repro", "obs", "fixture.py")

    def test_write_mode_open_flagged(self):
        found = lint("""\
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
        """, path=self.SERVE_PATH)
        assert codes(found) == ["RPR009"]
        assert "truncates" in found[0].message

    def test_mode_keyword_and_exclusive_create_flagged(self):
        found = lint("""\
            def dump(path, text):
                open(path, mode="w").write(text)
                open(path, "x").write(text)
        """, path=self.OBS_PATH)
        assert codes(found) == ["RPR009", "RPR009"]

    def test_read_and_append_clean(self):
        found = lint("""\
            def load(path):
                with open(path) as handle:
                    head = handle.read()
                with open(path, "r") as handle:
                    body = handle.read()
                with open(path, "a") as handle:  # append-only journal
                    handle.write(head)
                return body
        """, path=self.SERVE_PATH)
        assert found == []

    def test_tmp_path_stream_pattern_clean(self):
        # The sanctioned idiom: stream into tmp_path(p), then os.replace.
        found = lint("""\
            import os
            from repro.obs.ioutil import tmp_path
            def dump(path, lines):
                with open(tmp_path(path), "w") as handle:
                    handle.writelines(lines)
                os.replace(tmp_path(path), path)
        """, path=self.OBS_PATH)
        assert found == []

    def test_tmp_path_variable_clean(self):
        found = lint("""\
            import os
            from repro.obs.ioutil import tmp_path
            def dump(path, lines):
                tmp = tmp_path(path)
                with open(tmp, "w") as handle:
                    handle.writelines(lines)
                os.replace(tmp, path)
        """, path=self.OBS_PATH)
        assert found == []

    def test_out_of_scope_path_clean(self):
        found = lint("""\
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
        """, path=UTIL_PATH)
        assert found == []

    def test_ioutil_helper_no_blanket_exemption(self):
        # ioutil.py used to carry a whole-file RPR009 exemption; the real
        # helper's tmp-file + os.replace idiom passes the rule on its
        # own, so the dead allowlist entry was removed (RPR130).  A
        # truncating write without the rename is flagged even here.
        found = lint("""\
            def atomic_write_text(path, text):
                with open(path + ".tmp", "w") as handle:
                    handle.write(text)
        """, path=os.path.join("src", "repro", "obs", "ioutil.py"))
        assert [f.code for f in found] == ["RPR009"]

    def test_noqa_escape(self):
        found = lint("""\
            def truncate(path):
                open(path, "w").close()  # repro: noqa RPR009
        """, path=self.SERVE_PATH)
        assert found == []


class TestSuppression:
    def test_blanket_noqa(self):
        found = lint("""\
            import random
            def pick(jobs):
                return random.choice(jobs)  # repro: noqa
        """)
        assert found == []

    def test_targeted_noqa(self):
        found = lint("""\
            import random
            def pick(jobs):
                return random.choice(jobs)  # repro: noqa RPR001
        """)
        assert found == []

    def test_wrong_code_does_not_suppress(self):
        found = lint("""\
            import random
            def pick(jobs):
                return random.choice(jobs)  # repro: noqa RPR002
        """)
        assert codes(found) == ["RPR001"]


class TestReporting:
    BAD = """\
        import random
        def pick(jobs):
            return random.choice(jobs)
    """

    def test_syntax_error_is_rpr000(self):
        found = lint("def broken(:\n")
        assert codes(found) == ["RPR000"]

    def test_finding_format_has_location_and_hint(self):
        found = lint(self.BAD)
        line = found[0].format()
        assert SIM_PATH in line and "RPR001" in line and "hint:" in line

    def test_text_report(self):
        report = format_text(lint(self.BAD))
        assert "1 finding(s)" in report and "RPR001 x1" in report
        assert format_text([]) == "determinism lint: clean"

    def test_json_report(self):
        payload = json.loads(format_json(lint(self.BAD)))
        assert payload["count"] == 1
        assert payload["findings"][0]["code"] == "RPR001"
        assert payload["findings"][0]["line"] == 3

    def test_rules_table_complete(self):
        assert set(RULES) == {f"RPR00{i}" for i in range(10)}
        for summary, hint in RULES.values():
            assert summary and hint

    def test_findings_sorted_by_location(self):
        found = lint("""\
            import random
            import time
            def tick():
                a = time.time()
                b = random.random()
                return a + b
        """)
        assert codes(found) == ["RPR002", "RPR001"]
        assert [f.line for f in found] == sorted(f.line for f in found)


class TestLintPaths:
    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["no/such/dir"])

    def test_directory_walk_skips_pycache(self, tmp_path):
        sim = tmp_path / "sim"
        cache = sim / "__pycache__"
        cache.mkdir(parents=True)
        (sim / "bad.py").write_text("import random\nrandom.random()\n")
        (cache / "stale.py").write_text("import random\nrandom.random()\n")
        found = lint_paths([str(tmp_path)])
        assert len(found) == 1
        assert "__pycache__" not in found[0].path


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestRealTree:
    def test_src_tree_is_clean(self):
        assert lint_paths([os.path.join(repo_root(), "src")]) == []

    def test_tests_tree_is_clean(self):
        assert lint_paths([os.path.join(repo_root(), "tests")]) == []

    def test_cli_lint_clean_exit(self, capsys):
        from repro.cli import main
        assert main(["lint", os.path.join(repo_root(), "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_lint_findings_exit_one(self, tmp_path, capsys):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text("import random\nrandom.random()\n")
        from repro.cli import main
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1


class TestFindingDataclass:
    def test_frozen(self):
        finding = Finding(code="RPR001", path="x.py", line=1, col=0,
                          message="m", hint="h")
        with pytest.raises(Exception):
            finding.code = "RPR002"
