"""Tests for trace CSV import/export."""

import io

import numpy as np
import pytest

from repro.traces import TraceGenerator, VENUS
from repro.traces.io import (
    TraceParseError,
    read_trace_csv,
    split_history,
    write_native_csv,
)

from conftest import make_job


class TestNativeRoundTrip:
    def test_roundtrip_preserves_everything(self):
        jobs = TraceGenerator(VENUS.with_jobs(50)).generate()
        buffer = io.StringIO()
        count = write_native_csv(jobs, buffer)
        assert count == 50
        buffer.seek(0)
        back = read_trace_csv(buffer, dialect="native")
        assert len(back) == 50
        for a, b in zip(jobs, back):
            assert a.job_id == b.job_id
            assert a.name == b.name
            assert a.user == b.user
            assert a.vc == b.vc
            assert a.duration == pytest.approx(b.duration, abs=1e-3)
            assert a.gpu_num == b.gpu_num
            assert a.profile.gpu_util == pytest.approx(
                b.profile.gpu_util, abs=1e-3)
            assert a.amp == b.amp
            assert a.template_id == b.template_id

    def test_file_roundtrip(self, tmp_path):
        jobs = [make_job(1), make_job(2, duration=50.0)]
        path = tmp_path / "trace.csv"
        write_native_csv(jobs, path)
        back = read_trace_csv(path)
        assert [j.job_id for j in back] == [1, 2]


HELIOS_CSV = """\
job_id,user,vc,job_name,gpu_num,state,submit_time,duration
job-001,alice,vcA,train_resnet,4,COMPLETED,1000,3600
job-002,bob,vcB,train_bert,8,FAILED,2000,120
job-003,carol,vcA,sweep_lr,1,RUNNING,3000,
job-004,dave,vcB,train_gan,2,CANCELLED,4000,900
"""

PHILLY_CSV = """\
jobid,user,vc,jobname,num_gpus,status,submitted_time,run_time
application_1001,u1,philly,exp1,1,Pass,0,600
application_1002,u2,philly,exp2,16,Killed,500,7200
application_1003,u3,philly,exp3,4,Running,900,
application_1004,u4,philly,exp4,2,Failed,1200,60
"""


class TestExternalDialects:
    def test_helios_parsing(self):
        jobs = read_trace_csv(io.StringIO(HELIOS_CSV), dialect="helios")
        # Running job (no duration) is skipped; completed/failed/cancelled
        # rows are kept (they consumed resources).
        assert len(jobs) == 3
        first = jobs[0]
        assert first.user == "alice"
        assert first.vc == "vcA"
        assert first.gpu_num == 4
        assert first.duration == 3600.0
        assert first.profile is not None

    def test_philly_parsing(self):
        jobs = read_trace_csv(io.StringIO(PHILLY_CSV), dialect="philly")
        assert len(jobs) == 3
        assert jobs[0].name == "exp1"
        assert jobs[1].gpu_num == 16

    def test_auto_sniffing(self):
        assert len(read_trace_csv(io.StringIO(HELIOS_CSV))) == 3
        assert len(read_trace_csv(io.StringIO(PHILLY_CSV))) == 3

    def test_epoch_normalized(self):
        jobs = read_trace_csv(io.StringIO(HELIOS_CSV))
        assert jobs[0].submit_time == 0.0
        assert jobs[-1].submit_time > 0.0

    def test_max_jobs_cap(self):
        jobs = read_trace_csv(io.StringIO(PHILLY_CSV), max_jobs=1)
        assert len(jobs) == 1

    def test_profile_assignment_deterministic(self):
        a = read_trace_csv(io.StringIO(HELIOS_CSV), seed=3)
        b = read_trace_csv(io.StringIO(HELIOS_CSV), seed=3)
        assert [j.profile.gpu_util for j in a] == \
            [j.profile.gpu_util for j in b]

    def test_heavy_jobs_skew_heavy_profiles(self):
        rows = ["job_id,user,vc,job_name,gpu_num,state,submit_time,duration"]
        for i in range(300):
            rows.append(f"h{i},u,v,big,8,COMPLETED,{i},100000")
        for i in range(300):
            rows.append(f"l{i},u,v,small,1,COMPLETED,{i},60")
        jobs = read_trace_csv(io.StringIO("\n".join(rows)))
        heavy = np.mean([j.profile.gpu_util for j in jobs
                         if j.duration > 1000])
        light = np.mean([j.profile.gpu_util for j in jobs
                         if j.duration <= 1000])
        assert heavy > light


class TestErrors:
    def test_empty_file(self):
        with pytest.raises(TraceParseError):
            read_trace_csv(io.StringIO(""))

    def test_unknown_dialect(self):
        with pytest.raises(TraceParseError):
            read_trace_csv(io.StringIO(HELIOS_CSV), dialect="slurm")

    def test_unsniffable_header(self):
        with pytest.raises(TraceParseError, match="sniff"):
            read_trace_csv(io.StringIO("a,b,c\n1,2,3\n"))


class TestSplitHistory:
    def test_chronological_split(self):
        jobs = [make_job(i, submit_time=float(i * 100)) for i in range(1, 11)]
        history, evaluation = split_history(jobs, fraction=0.3)
        assert len(history) == 3
        assert len(evaluation) == 7
        # Evaluation starts at t=0; history is strictly in the past.
        assert evaluation[0].submit_time == 0.0
        assert all(j.submit_time < 0 for j in history)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            split_history([make_job(1)], fraction=1.5)

    def test_imported_trace_drives_simulation(self):
        """End-to-end: import an external CSV and schedule it with Lucid."""
        import io as _io
        rows = ["jobid,user,vc,jobname,num_gpus,status,submitted_time,run_time"]
        rng = np.random.default_rng(0)
        for i in range(300):
            rows.append(
                f"app_{i},u{i % 7},default,exp{i % 9},"
                f"{int(rng.choice([1, 1, 2, 4]))},Pass,"
                f"{i * 60},{int(rng.uniform(60, 4000))}")
        jobs = read_trace_csv(_io.StringIO("\n".join(rows)))
        history, evaluation = split_history(jobs, fraction=0.5)
        # History durations play the role of realized runtimes.
        from repro import Simulator
        from repro.cluster import Cluster
        from repro.core import LucidScheduler
        cluster = Cluster.homogeneous(4, vc_name="default")
        result = Simulator(cluster, evaluation,
                           LucidScheduler(history)).run()
        assert result.n_jobs == len(evaluation)
