"""Tests for the fault-injection subsystem (:mod:`repro.faults`)."""

import json

import pytest

from repro import Simulator
from repro.cluster import Cluster
from repro.faults import (FaultInjector, FaultScriptEntry, FaultSpec,
                          FaultSpecError, RetryPolicy)
from repro.obs import RingBufferTracer
from repro.obs.timeline import build_chrome_trace
from repro.schedulers.base import Scheduler
from repro.sim import SimulationError
from repro.workloads import JobStatus

from conftest import make_job


class GreedyScheduler(Scheduler):
    """Places every pending job exclusively, in submit order."""

    name = "greedy"

    def schedule(self, now):
        for job in sorted(self.queue, key=lambda j: j.submit_time):
            if self.try_place_exclusive(job):
                self.queue.remove(job)


def run_sim(jobs, faults=None, nodes=2, tracer=None, scheduler=None):
    cluster = Cluster.homogeneous(nodes, vc_name="vc1")
    kwargs = {}
    if tracer is not None:
        kwargs["tracer"] = tracer
    sim = Simulator(cluster, jobs, scheduler or GreedyScheduler(),
                    faults=faults, **kwargs)
    return sim.run()


def fingerprint(result):
    """Everything that must be bit-identical between two runs."""
    return (result.makespan,
            [(r.job_id, r.jct, r.queue_delay, r.restarts, r.failed)
             for r in result.records],
            result.faults)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base=30.0, backoff_factor=2.0,
                             backoff_cap=100.0)
        assert policy.backoff(1) == 30.0
        assert policy.backoff(2) == 60.0
        assert policy.backoff(3) == 100.0  # capped, not 120

    def test_checkpoint_rollback_floors_to_interval(self):
        policy = RetryPolicy(checkpoint_interval=600.0)
        assert policy.checkpointed_progress(1234.0) == 1200.0
        assert policy.checkpointed_progress(599.9) == 0.0

    def test_zero_interval_disables_checkpointing(self):
        policy = RetryPolicy(checkpoint_interval=0.0)
        assert policy.checkpointed_progress(5000.0) == 0.0


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
class TestFaultSpecParsing:
    def test_inline_kv(self):
        spec = FaultSpec.parse("node_mtbf=3600,crash_rate=0.5,seed=7")
        assert spec.node_mtbf == 3600.0
        assert spec.crash_rate == 0.5
        assert spec.seed == 7 and isinstance(spec.seed, int)
        assert spec.enabled

    def test_inline_json_with_script(self):
        spec = FaultSpec.parse(json.dumps({
            "retry_limit": 1,
            "script": [{"time": 50.0, "kind": "node_fail", "node": 0}],
        }))
        assert spec.retry_limit == 1
        assert spec.script[0].kind == "node_fail"

    def test_json_file(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"crash_rate": 1.5}))
        assert FaultSpec.parse(str(path)).crash_rate == 1.5

    def test_default_spec_is_disabled(self):
        assert not FaultSpec().enabled

    @pytest.mark.parametrize("text", [
        "bogus_key=1",
        "node_mtbf=abc",
        "node_mtbf",
        "",
        '{"script": [{"time": -5, "kind": "node_fail", "node": 0}]}',
        '{"script": [{"time": 5, "kind": "meteor"}]}',
        '{"script": [{"time": 5, "kind": "slowdown", "node": 0,'
        ' "factor": 1.5}]}',
        '{"slowdown_factor": 0.0}',
        '{"retry_limit": -1}',
        '{not json',
    ])
    def test_bad_specs_raise(self, text):
        with pytest.raises(FaultSpecError):
            FaultSpec.parse(text)

    def test_missing_file_raises(self):
        with pytest.raises(FaultSpecError, match="not found"):
            FaultSpec.parse("/no/such/faults.json")


# ----------------------------------------------------------------------
# Zero-fault regression: faults off must be bit-identical to no faults
# ----------------------------------------------------------------------
class TestZeroFaultRegression:
    def _jobs(self):
        return [make_job(i, duration=400.0 + 100.0 * i, gpu_num=2,
                         submit_time=50.0 * i) for i in range(1, 9)]

    def test_disabled_spec_is_bit_identical(self):
        baseline = run_sim(self._jobs())
        disabled = run_sim(self._jobs(), faults=FaultSpec())
        assert baseline.makespan == disabled.makespan
        assert [(r.job_id, r.jct, r.queue_delay)
                for r in baseline.records] == \
            [(r.job_id, r.jct, r.queue_delay) for r in disabled.records]
        assert disabled.faults is None  # disabled spec arms nothing

    def test_disabled_spec_hides_fault_summary_keys(self):
        result = run_sim(self._jobs(), faults=FaultSpec())
        assert "node_failures" not in result.summary()
        assert "goodput" not in result.summary()


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    SPEC = FaultSpec(seed=11, node_mtbf=4000.0, node_mttr=300.0,
                     crash_rate=2.0, slowdown_rate=1.0,
                     backoff_base=20.0, checkpoint_interval=200.0)

    def _jobs(self):
        return [make_job(i, duration=900.0, gpu_num=1, submit_time=30.0 * i)
                for i in range(1, 13)]

    def test_same_seed_bit_identical(self):
        first = run_sim(self._jobs(), faults=self.SPEC, nodes=3)
        second = run_sim(self._jobs(), faults=self.SPEC, nodes=3)
        assert fingerprint(first) == fingerprint(second)
        assert first.faults.job_crashes > 0  # faults actually fired

    def test_spec_object_and_injector_agree(self):
        """Passing a pre-built injector equals passing the raw spec."""
        by_spec = run_sim(self._jobs(), faults=self.SPEC, nodes=3)
        by_injector = run_sim(self._jobs(),
                              faults=FaultInjector(self.SPEC), nodes=3)
        assert fingerprint(by_spec) == fingerprint(by_injector)


# ----------------------------------------------------------------------
# Scripted faults: exact behavioural checks
# ----------------------------------------------------------------------
class TestScriptedFaults:
    def test_node_failure_kills_and_requeues(self):
        """Both nodes fail at t=100; the job retries after recovery."""
        spec = FaultSpec(
            backoff_base=30.0, checkpoint_interval=600.0,
            script=(
                FaultScriptEntry(time=100.0, kind="node_fail", node=0,
                                 duration=200.0),
                FaultScriptEntry(time=100.0, kind="node_fail", node=1,
                                 duration=200.0),
            ))
        result = run_sim([make_job(1, duration=1000.0)], faults=spec)
        record = result.records[0]
        # Crash at 100 with progress 100 < one checkpoint: restart from 0.
        # The whole cluster is down until t=300, then the job reruns fully.
        assert record.restarts == 1
        assert not record.failed
        assert result.makespan == pytest.approx(1300.0)
        assert result.faults.node_failures == 2
        assert result.faults.node_recoveries == 2
        assert result.faults.lost_gpu_hours == pytest.approx(100.0 / 3600.0)
        assert result.faults.mttr == pytest.approx(200.0)

    def test_repairs_in_flight_at_sim_end_are_censored(self):
        """A node still down when the run ends must not drag MTTR low.

        Node 1 (idle) fails at t=500 and would recover at t=10500 —
        long after the only job finishes at t=1000.  Its truncated
        500 s downtime is a censored observation: excluded from
        ``mttr`` and surfaced through ``censored_repairs`` /
        ``censored_repair_hours`` instead.
        """
        spec = FaultSpec(script=(
            FaultScriptEntry(time=100.0, kind="node_fail", node=0,
                             duration=50.0),
            FaultScriptEntry(time=500.0, kind="node_fail", node=1,
                             duration=10_000.0),
        ))
        result = run_sim([make_job(1, duration=1000.0)], faults=spec)
        stats = result.faults
        assert stats.node_failures == 2
        assert stats.node_recoveries == 1
        # Only node 0's completed 50 s repair feeds the mean; naively
        # folding in node 1's open window would have yielded 275 s.
        assert stats.mttr == pytest.approx(50.0)
        assert stats.censored_repairs == 1
        makespan = result.makespan
        assert stats.censored_repair_hours == pytest.approx(
            (makespan - 500.0) / 3600.0)
        assert result.summary()["censored_repairs"] == 1.0

    def test_crash_resumes_from_last_checkpoint(self):
        spec = FaultSpec(
            backoff_base=50.0, checkpoint_interval=300.0,
            script=(FaultScriptEntry(time=700.0, kind="job_crash", job=1),))
        result = run_sim([make_job(1, duration=1000.0)], faults=spec)
        record = result.records[0]
        # Crash at 700 rolls back to checkpoint 600 (lost 100); the retry
        # fires at 750 and the remaining 400s of work finish at 1150.
        assert record.restarts == 1
        assert record.jct == pytest.approx(1150.0)
        assert result.faults.lost_gpu_hours == pytest.approx(100.0 / 3600.0)

    def test_retry_budget_exhaustion_fails_permanently(self):
        spec = FaultSpec(
            retry_limit=0,
            script=(FaultScriptEntry(time=100.0, kind="job_crash", job=1),))
        result = run_sim([make_job(1, duration=1000.0),
                          make_job(2, duration=500.0, submit_time=0.0)],
                         faults=spec)
        by_id = {r.job_id: r for r in result.records}
        assert by_id[1].failed and by_id[1].restarts == 0
        assert not by_id[2].failed
        assert result.faults.jobs_failed == 1
        # Useful work: job 2's 500 GPU-s; wasted: job 1's 100 GPU-s.
        assert result.faults.goodput == pytest.approx(500.0 / 600.0)
        assert [r.job_id for r in result.failed_jobs()] == [1]

    def test_crash_against_idle_job_fizzles(self):
        spec = FaultSpec(
            script=(FaultScriptEntry(time=5000.0, kind="job_crash", job=1),))
        result = run_sim([make_job(1, duration=1000.0)], faults=spec)
        assert result.faults.job_crashes == 0
        assert result.records[0].restarts == 0

    def test_slowdown_halves_execution_speed(self):
        spec = FaultSpec(
            script=(FaultScriptEntry(time=100.0, kind="slowdown", node=0,
                                     duration=100_000.0, factor=0.5),))
        result = run_sim([make_job(1, duration=1000.0)], faults=spec,
                         nodes=1)
        # 100s at full speed + 900s of work at half speed = 1900s.
        assert result.makespan == pytest.approx(1900.0)
        assert result.faults.slowdowns == 1

    def test_profiler_fault_on_baseline_scheduler_is_inert(self):
        spec = FaultSpec(
            script=(FaultScriptEntry(time=10.0, kind="node_fail", node=0,
                                     target="profiler"),))
        result = run_sim([make_job(1, duration=500.0)], faults=spec)
        assert result.faults.node_failures == 0
        assert result.makespan == pytest.approx(500.0)


# ----------------------------------------------------------------------
# Fault events in telemetry
# ----------------------------------------------------------------------
class TestFaultTelemetry:
    def _traced_run(self):
        spec = FaultSpec(
            backoff_base=30.0,
            script=(
                FaultScriptEntry(time=100.0, kind="node_fail", node=0,
                                 duration=200.0),
                FaultScriptEntry(time=100.0, kind="node_fail", node=1,
                                 duration=200.0),
                FaultScriptEntry(time=2000.0, kind="slowdown", node=0,
                                 duration=100.0, factor=0.5),
            ))
        tracer = RingBufferTracer()
        result = run_sim([make_job(1, duration=1000.0)], faults=spec,
                         tracer=tracer)
        return result, tracer

    def test_tracer_records_fault_lifecycle(self):
        _, tracer = self._traced_run()
        kinds = tracer.counts_by_kind()
        assert kinds.get("node_fail") == 2
        assert kinds.get("node_recover") == 2
        assert kinds.get("crash") == 1
        assert kinds.get("retry") == 1
        crash = tracer.of_kind("crash")[0]
        assert crash.job_id == 1
        assert crash.data["cause"] == "node_fail"

    def test_chrome_timeline_gets_a_faults_track(self):
        _, tracer = self._traced_run()
        document = build_chrome_trace(tracer.events)
        faults = [e for e in document["traceEvents"]
                  if e.get("cat") == "fault"]
        assert any(e["name"].startswith("node_fail") for e in faults)
        names = [e for e in document["traceEvents"]
                 if e.get("name") == "process_name"]
        assert any(m["args"]["name"] == "faults" for m in names)

    def test_fault_metrics_exported(self):
        result, _ = self._traced_run()
        metrics = result.telemetry.metrics
        assert "goodput" in metrics and "lost_gpu_hours" in metrics
        assert metrics.get("fault_node_failures") == 2

    def test_summary_carries_fault_keys(self):
        result, _ = self._traced_run()
        summary = result.summary()
        assert summary["node_failures"] == 2
        assert summary["restarts"] == 1
        assert 0.0 < summary["goodput"] <= 1.0
        assert result.total_restarts() == 1


# ----------------------------------------------------------------------
# Lucid graceful degradation
# ----------------------------------------------------------------------
class TestLucidDegradation:
    SPEC_KW = dict(name="faulty", n_nodes=6, n_vcs=2, n_jobs=60,
                   full_n_jobs=60, mean_duration=1500.0, span_days=0.3,
                   n_users=10, seed=77)

    def _run_lucid(self, faults):
        from repro.core import LucidScheduler
        from repro.traces import TraceGenerator, TraceSpec

        generator = TraceGenerator(TraceSpec(**self.SPEC_KW))
        cluster = generator.build_cluster()
        history = generator.generate_history()
        jobs = generator.generate()
        scheduler = LucidScheduler(history)
        result = Simulator(cluster, jobs, scheduler, faults=faults).run()
        return result, scheduler

    def test_profiler_outage_degrades_to_direct_admission(self):
        """With every profiler node dead, Lucid still finishes all jobs
        by admitting them unprofiled (no packing, estimator fallback)."""
        script = tuple(
            FaultScriptEntry(time=0.0, kind="node_fail", node=index,
                             target="profiler", duration=10_000_000.0)
            for index in range(6))
        result, _ = self._run_lucid(FaultSpec(script=script))
        assert len(result.records) == self.SPEC_KW["n_jobs"]
        assert not any(r.failed for r in result.records)
        # Nothing can finish inside a dead profiler.
        assert result.profiler_finish_rate() == 0.0

    def test_lucid_survives_stochastic_faults(self):
        """Mixed node/crash/straggler faults: the run completes and the
        failure accounting is consistent."""
        spec = FaultSpec(seed=5, node_mtbf=30_000.0, node_mttr=600.0,
                         profiler_mtbf=30_000.0, profiler_mttr=600.0,
                         crash_rate=1.0, slowdown_rate=0.5)
        result, _ = self._run_lucid(spec)
        stats = result.faults
        assert len(result.records) == self.SPEC_KW["n_jobs"]
        assert stats.node_failures >= stats.node_recoveries >= 0
        assert stats.job_crashes == stats.restarts + stats.jobs_failed
        assert 0.0 <= stats.goodput <= 1.0
        finished = [r for r in result.records if not r.failed]
        assert len(finished) == self.SPEC_KW["n_jobs"] - stats.jobs_failed


# ----------------------------------------------------------------------
# Engine error reporting
# ----------------------------------------------------------------------
class TestSimulationError:
    def test_require_state_names_the_job(self):
        cluster = Cluster.homogeneous(1, vc_name="vc1")
        job = make_job(1, name="alpha")
        sim = Simulator(cluster, [job], GreedyScheduler())
        with pytest.raises(SimulationError, match=r"job 1 .*'alpha'.*not"
                                                  r" running"):
            sim._require_state(job)

    def test_simulation_error_is_a_runtime_error(self):
        assert issubclass(SimulationError, RuntimeError)


# ----------------------------------------------------------------------
# CLI robustness
# ----------------------------------------------------------------------
class TestCliErrors:
    def test_bad_fault_spec_exits_2(self, capsys):
        from repro.cli import main
        assert main(["simulate", "--jobs", "5",
                     "--faults", "bogus=1"]) == 2
        assert "invalid --faults" in capsys.readouterr().err

    def test_missing_trace_file_exits_2(self, capsys):
        from repro.cli import main
        assert main(["simulate", "--trace", "/no/such/trace.csv"]) == 2
        assert "file not found" in capsys.readouterr().err

    def test_fault_summary_printed(self, capsys):
        from repro.cli import main
        assert main(["simulate", "--jobs", "10", "--seed", "3",
                     "--faults", "crash_rate=2.0,seed=1"]) == 0
        assert "goodput" in capsys.readouterr().out
