"""Tests for simulation metrics and result aggregation."""

import numpy as np
import pytest

from repro.sim.metrics import (
    ScaleStats,
    SimulationResult,
    UtilizationSummary,
    speedup,
)
from repro.workloads.job import JobRecord


def record(job_id=1, duration=100.0, gpu_num=1, jct=150.0, queue=50.0,
           vc="vc1", preemptions=0, in_profiler=False):
    return JobRecord(
        job_id=job_id, name=f"j{job_id}", user="u", vc=vc, submit_time=0.0,
        duration=duration, gpu_num=gpu_num, jct=jct, queue_delay=queue,
        preemptions=preemptions, finished_in_profiler=in_profiler,
    )


@pytest.fixture
def result():
    records = [
        record(1, duration=100, gpu_num=1, jct=100, queue=0, vc="a",
               in_profiler=True),
        record(2, duration=200, gpu_num=4, jct=300, queue=100, vc="a"),
        record(3, duration=50, gpu_num=16, jct=500, queue=450, vc="b",
               preemptions=2),
        record(4, duration=30, gpu_num=1, jct=400, queue=370, vc="b"),
    ]
    return SimulationResult(records=records, makespan=1000.0,
                            utilization=UtilizationSummary(0.5, 0.1, 0.3))


class TestAggregates:
    def test_avg_jct(self, result):
        assert result.avg_jct == pytest.approx((100 + 300 + 500 + 400) / 4)

    def test_avg_queue(self, result):
        assert result.avg_queue_delay == pytest.approx((0 + 100 + 450 + 370) / 4)

    def test_percentile(self, result):
        assert result.queue_percentile(100) == pytest.approx(450)
        assert result.queue_percentile(0) == pytest.approx(0)

    def test_empty_result(self):
        empty = SimulationResult([], 0.0, UtilizationSummary(0, 0, 0))
        assert empty.avg_jct == 0.0
        assert empty.avg_queue_delay == 0.0
        assert empty.queue_percentile(99.9) == 0.0
        assert empty.profiler_finish_rate() == 0.0


class TestBreakdowns:
    def test_by_vc(self, result):
        groups = result.by_vc()
        assert len(groups["a"]) == 2
        assert len(groups["b"]) == 2

    def test_avg_queue_by_vc(self, result):
        per_vc = result.avg_queue_by_vc()
        assert per_vc["a"] == pytest.approx(50)
        assert per_vc["b"] == pytest.approx(410)

    def test_scale_split(self, result):
        split = result.scale_split()
        assert split["large"].n_jobs == 1  # only the 16-GPU job
        assert split["small"].n_jobs == 3
        assert split["large"].avg_queue_delay == pytest.approx(450)

    def test_scale_split_empty_class(self):
        res = SimulationResult([record(1)], 10.0, UtilizationSummary(0, 0, 0))
        split = res.scale_split()
        assert split["large"] == ScaleStats(0, 0.0, 0.0)

    def test_profiler_finish_rate(self, result):
        assert result.profiler_finish_rate() == pytest.approx(0.25)

    def test_total_preemptions(self, result):
        assert result.total_preemptions() == 2

    def test_short_jobs_queued(self, result):
        # Jobs 3 and 4: duration <= 60s with queue > 60s.
        assert result.short_jobs_queued() == 2


class TestCDF:
    def test_jct_cdf_monotone(self, result):
        xs, cdf = result.jct_cdf()
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_jct_cdf_custom_grid(self, result):
        xs, cdf = result.jct_cdf(grid=[99, 100, 1000])
        assert cdf[0] == 0.0
        assert cdf[1] == pytest.approx(0.25)
        assert cdf[2] == 1.0


class TestSummary:
    def test_summary_keys(self, result):
        summary = result.summary()
        for key in ("avg_jct_hrs", "avg_queue_hrs", "p999_queue_hrs",
                    "makespan_hrs", "gpu_busy", "profiler_finish_rate"):
            assert key in summary

    def test_summary_units(self, result):
        summary = result.summary()
        assert summary["avg_jct_hrs"] == pytest.approx(result.avg_jct / 3600)
        assert summary["makespan_hrs"] == pytest.approx(1000 / 3600)


def test_speedup():
    assert speedup(10.0, 5.0) == 2.0
    assert speedup(10.0, 0.0) == float("inf")
