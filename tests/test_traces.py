"""Tests for trace specs and the synthetic generator."""

import numpy as np
import pytest

from repro.traces import (
    PHILLY,
    SATURN,
    VENUS,
    TraceGenerator,
    TraceSpec,
    get_spec,
    mean_utilization,
    utilization_cdf,
    utilization_variants,
)
from repro.workloads import JobStatus


class TestSpec:
    def test_presets_exist(self):
        assert get_spec("venus") is VENUS
        assert get_spec("SATURN") is SATURN
        assert get_spec("philly") is PHILLY

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError):
            get_spec("azure")

    def test_table2_identity(self):
        assert VENUS.n_vcs == 15
        assert SATURN.n_vcs == 20
        assert PHILLY.n_vcs == 1
        assert VENUS.full_n_jobs == 23_859
        assert SATURN.full_n_jobs == 101_254
        assert PHILLY.full_n_jobs == 12_389
        assert VENUS.mean_duration == 5_419.0
        assert SATURN.mean_duration == 13_006.0
        assert PHILLY.mean_duration == 25_533.0

    def test_scaled(self):
        spec = VENUS.scaled(0.1)
        assert spec.n_jobs == int(VENUS.full_n_jobs * 0.1)
        with pytest.raises(ValueError):
            VENUS.scaled(0)

    def test_with_helpers(self):
        assert VENUS.with_seed(7).seed == 7
        assert VENUS.with_jobs(10).n_jobs == 10
        assert VENUS.with_utilization("H").utilization == "H"

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSpec("x", n_nodes=2, n_vcs=5, n_jobs=10, full_n_jobs=10,
                      mean_duration=100, span_days=1, n_users=3)
        with pytest.raises(ValueError):
            VENUS.with_utilization("X")


class TestGenerator:
    @pytest.fixture(scope="class")
    def trace(self, request):
        spec = VENUS.with_jobs(800)
        gen = TraceGenerator(spec)
        return spec, gen, gen.build_cluster(), gen.generate()

    def test_job_count_and_sorting(self, trace):
        spec, gen, cluster, jobs = trace
        assert len(jobs) == 800
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)

    def test_unique_ids(self, trace):
        _, _, _, jobs = trace
        assert len({j.job_id for j in jobs}) == len(jobs)

    def test_cluster_matches_spec(self, trace):
        spec, _, cluster, _ = trace
        assert cluster.n_gpus == spec.n_gpus
        assert len(cluster.vcs) == spec.n_vcs

    def test_small_job_dominance(self, trace):
        """>= 95% of jobs fit within one node (§2.2)."""
        _, _, _, jobs = trace
        small = np.mean([j.gpu_num <= 8 for j in jobs])
        assert small >= 0.93

    def test_jobs_fit_their_vc(self, trace):
        _, _, cluster, jobs = trace
        for job in jobs:
            assert job.gpu_num <= cluster.vc(job.vc).n_gpus

    def test_recurrence(self, trace):
        """Most submissions re-run an existing template (§2.3)."""
        _, _, _, jobs = trace
        from collections import Counter
        counts = Counter(j.template_id for j in jobs)
        recurring = sum(c for c in counts.values() if c > 1)
        assert recurring / len(jobs) > 0.6

    def test_duration_mean_near_target(self):
        spec = VENUS.with_jobs(4000)
        jobs = TraceGenerator(spec).generate()
        mean = np.mean([j.duration for j in jobs])
        assert 0.5 * spec.mean_duration < mean < 1.8 * spec.mean_duration

    def test_diurnal_pattern(self):
        spec = VENUS.with_jobs(5000)
        jobs = TraceGenerator(spec).generate()
        hours = np.array([(j.submit_time % 86_400) // 3600 for j in jobs])
        day = np.sum((hours >= 10) & (hours < 18))
        night = np.sum((hours >= 0) & (hours < 8))
        assert day > 1.5 * night

    def test_determinism(self):
        spec = VENUS.with_jobs(200)
        a = TraceGenerator(spec).generate()
        b = TraceGenerator(spec).generate()
        assert [(j.name, j.submit_time, j.duration) for j in a] == \
               [(j.name, j.submit_time, j.duration) for j in b]

    def test_seed_changes_trace(self):
        a = TraceGenerator(VENUS.with_jobs(200)).generate()
        b = TraceGenerator(VENUS.with_jobs(200).with_seed(77)).generate()
        assert [j.duration for j in a] != [j.duration for j in b]

    def test_history_precedes_evaluation(self, tiny_generator):
        history = tiny_generator.generate_history(1.0)
        jobs = tiny_generator.generate()
        assert max(j.submit_time for j in history) <= 0.0
        assert min(j.submit_time for j in jobs) >= 0.0

    def test_history_shares_templates(self, tiny_generator):
        history = tiny_generator.generate_history(2.0)
        jobs = tiny_generator.generate()
        hist_names = {j.name for j in history}
        overlap = sum(1 for j in jobs if j.name in hist_names)
        assert overlap / len(jobs) > 0.5


class TestUtilizationVariants:
    def test_three_variants(self):
        variants = utilization_variants(VENUS)
        assert set(variants) == {"L", "M", "H"}

    def test_ordering_l_m_h(self):
        """Figure 12a: Venus-L lighter than Venus-M lighter than Venus-H."""
        means = {}
        for level, spec in utilization_variants(VENUS.with_jobs(1500)).items():
            jobs = TraceGenerator(spec).generate()
            means[level] = mean_utilization(jobs)
        assert means["L"] < means["M"] < means["H"]

    def test_cdf_shape(self):
        jobs = TraceGenerator(VENUS.with_jobs(500)).generate()
        xs, cdf = utilization_cdf(jobs)
        assert cdf[0] <= cdf[-1] <= 1.0
        assert np.all(np.diff(cdf) >= 0)

    def test_cdf_empty(self):
        xs, cdf = utilization_cdf([])
        assert np.all(cdf == 0)

    def test_mean_utilization_empty(self):
        assert mean_utilization([]) == 0.0


class TestPaperScalePresets:
    def test_full_specs_match_table2(self):
        from repro.traces import PHILLY_FULL, SATURN_FULL, VENUS_FULL
        assert VENUS_FULL.n_jobs == 23_859
        assert VENUS_FULL.n_gpus == 1_080
        assert SATURN_FULL.n_jobs == 101_254
        assert SATURN_FULL.n_gpus == 2_080
        assert PHILLY_FULL.n_jobs == 12_389
        assert PHILLY_FULL.n_gpus == 864

    def test_paper_scale_generation_works(self):
        """Generating (not simulating) a paper-scale trace is feasible."""
        from repro.traces import VENUS_FULL
        jobs = TraceGenerator(VENUS_FULL.with_jobs(5000)).generate()
        assert len(jobs) == 5000
        assert np.mean([j.gpu_num <= 8 for j in jobs]) > 0.9
