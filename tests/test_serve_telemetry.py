"""End-to-end telemetry tests: daemon scrape, negotiation, bit-identity.

A strict miniature Prometheus text-format parser validates a live
daemon's ``/metrics`` exposition (``# TYPE`` discipline, label-value
escaping, histogram bucket monotonicity with ``+Inf`` equal to
``_count``).  The regression half proves the zero-overhead contract:
an identical workload run with telemetry on and off produces
bit-identical commit digests and final state.
"""

from __future__ import annotations

import io
import json
import math
import re
import urllib.error
import urllib.request

import pytest

from repro.obs.live import CONTENT_TYPE_PROMETHEUS
from repro.obs.logutil import configure_logging
from repro.serve import ServeConfig, ServeDaemon
from repro.serve.chaos import commit_digests, final_state

CONFIG = ServeConfig(trace="venus", scheduler="fifo", jobs=20, seed=7,
                     batch=8, events_per_tick=64)
#: The acceptance workload: lucid x venus @ 120 jobs.
LUCID_CONFIG = ServeConfig(trace="venus", scheduler="lucid", jobs=120,
                           seed=7, batch=8, events_per_tick=64)

SPEC = {
    "name": "resnet50", "user": "alice", "vc": "vc01",
    "gpu_num": 1, "duration": 600.0,
    "profile": {"gpu_util": 60.0, "gpu_mem_util": 30.0,
                "gpu_mem_mb": 12000.0},
}


def make_daemon(state_dir, config=CONFIG, **kwargs):
    kwargs.setdefault("durable", False)
    kwargs.setdefault("snapshot_every", 1)
    kwargs.setdefault("telemetry_refresh", 1)
    return ServeDaemon(str(state_dir), config, **kwargs)


def submit_n(daemon, n, **overrides):
    for index in range(n):
        daemon.submit(dict(SPEC, name=f"job{index}", **overrides))


def run_to_idle(daemon, limit=500):
    ticks = 0
    while daemon.tick():
        ticks += 1
        assert ticks < limit, "service never went idle"
    return ticks


def fetch(address, path, accept=None):
    """Raw GET returning ``(status, content_type, body_text)``."""
    host, port = address
    headers = {"Accept": accept} if accept else {}
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return (resp.status, resp.headers.get("Content-Type", ""),
                    resp.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        return (err.code, err.headers.get("Content-Type", ""),
                err.read().decode("utf-8"))


# ----------------------------------------------------------------------
# A strict miniature parser for Prometheus text format 0.0.4
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? "
    r"(?P<value>[^ ]+)$")
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def _parse_labels(body):
    """Strict ``a="x",b="y"`` parsing with escape validation."""
    labels = {}
    pos = 0
    while pos < len(body):
        match = _LABEL_RE.match(body, pos)
        assert match, f"bad label syntax at {body[pos:]!r}"
        raw = match.group("value")
        for escape in re.finditer(r"\\(.)", raw):
            assert escape.group(1) in ('\\', '"', 'n'), \
                f"invalid escape \\{escape.group(1)} in {raw!r}"
        value = (raw.replace("\\n", "\n").replace('\\"', '"')
                 .replace("\\\\", "\\"))
        name = match.group("name")
        assert name not in labels, f"duplicate label {name}"
        labels[name] = value
        pos = match.end()
        if pos < len(body):
            assert body[pos] == ",", f"expected ',' at {body[pos:]!r}"
            pos += 1
    return labels


def _parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises on garbage — that's the point


def parse_prometheus(text):
    """Parse + validate an exposition; returns ``{family: samples}``.

    ``samples`` maps ``(sample_name, frozenset(labelitems))`` to the
    float value.  Asserts the strict subset of format 0.0.4 the live
    plane emits: every sample preceded by its family's ``# TYPE``, one
    TYPE per family, histogram sample names limited to
    ``_bucket``/``_sum``/``_count``, and no duplicate series.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    types, helps, families = {}, {}, {}
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert name not in helps, f"duplicate HELP for {name}"
            assert name not in types, f"HELP after TYPE for {name}"
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "histogram"), kind
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            families[name] = {}
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_value(match.group("value"))
        family = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[:-len(suffix)]
            if sample_name.endswith(suffix) and types.get(base) \
                    == "histogram":
                family = base
        assert family in types, \
            f"sample {sample_name} has no preceding # TYPE"
        if types[family] == "histogram":
            assert family != sample_name, \
                f"bare histogram sample {sample_name}"
        key = (sample_name, frozenset(labels.items()))
        assert key not in families[family], f"duplicate series {key}"
        families[family][key] = value

    for name, kind in types.items():
        assert families[name], f"family {name} declared but empty"
        if kind != "histogram":
            continue
        series = {}
        for (sample_name, labelitems), value in families[name].items():
            labels = dict(labelitems)
            le = labels.pop("le", None)
            child = series.setdefault(frozenset(labels.items()),
                                      {"buckets": [], "sum": None,
                                       "count": None})
            if sample_name == f"{name}_bucket":
                assert le is not None, "bucket row without le"
                child["buckets"].append((_parse_value(le), value))
            elif sample_name == f"{name}_sum":
                child["sum"] = value
            else:
                assert sample_name == f"{name}_count"
                child["count"] = value
        for labelitems, child in series.items():
            assert child["sum"] is not None, f"{name} missing _sum"
            assert child["count"] is not None, f"{name} missing _count"
            buckets = sorted(child["buckets"])
            assert buckets, f"{name} has no buckets"
            assert buckets[-1][0] == math.inf, \
                f"{name} missing le=+Inf bucket"
            counts = [count for _, count in buckets]
            assert counts == sorted(counts), \
                f"{name} buckets not cumulative: {buckets}"
            assert counts[-1] == child["count"], \
                f"{name} +Inf bucket != _count"
    return types, families


class TestMiniParserSelfCheck:
    """The parser itself must reject malformed expositions."""

    def test_rejects_sample_without_type(self):
        with pytest.raises(AssertionError, match="no preceding"):
            parse_prometheus("orphan_metric 1\n")

    def test_rejects_non_cumulative_buckets(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 5\n'
               'h_bucket{le="+Inf"} 3\n'
               "h_sum 1\nh_count 3\n")
        with pytest.raises(AssertionError, match="not cumulative"):
            parse_prometheus(bad)

    def test_rejects_inf_count_mismatch(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="+Inf"} 3\n'
               "h_sum 1\nh_count 4\n")
        with pytest.raises(AssertionError, match="!= _count"):
            parse_prometheus(bad)

    def test_rejects_bad_escape(self):
        bad = ('# TYPE c counter\nc{x="a\\q"} 1\n')
        with pytest.raises(AssertionError, match="invalid escape"):
            parse_prometheus(bad)

    def test_round_trips_escaped_labels(self):
        good = ('# TYPE c counter\nc{x="a\\\\b\\"c\\nd"} 1\n')
        _, families = parse_prometheus(good)
        (_, labelitems), = families["c"].keys()
        assert dict(labelitems)["x"] == 'a\\b"c\nd'


# ----------------------------------------------------------------------
# Live daemon scrape
# ----------------------------------------------------------------------
class TestLiveScrape:
    @pytest.fixture
    def served(self, tmp_path):
        with make_daemon(tmp_path, http_port=0) as daemon:
            submit_n(daemon, 3)
            run_to_idle(daemon)
            yield daemon, daemon.http.address

    def test_exposition_is_valid_and_complete(self, served):
        _, address = served
        # Scrape twice so HTTP latency series from the first request
        # appear in the second exposition.
        fetch(address, "/metrics")
        code, ctype, text = fetch(address, "/metrics")
        assert code == 200
        assert ctype == CONTENT_TYPE_PROMETHEUS
        types, families = parse_prometheus(text)
        for family, kind in (
                ("repro_serve_tick_duration_seconds", "histogram"),
                ("repro_serve_wal_append_seconds", "histogram"),
                ("repro_serve_snapshot_write_seconds", "histogram"),
                ("repro_serve_recovery_replay_seconds", "histogram"),
                ("repro_serve_inbox_batch_size", "histogram"),
                ("repro_serve_inbox_poll_seconds", "histogram"),
                ("repro_serve_http_request_seconds", "histogram"),
                ("repro_serve_ticks_total", "counter"),
                ("repro_serve_wal_appended_bytes_total", "counter"),
                ("repro_serve_jobs_total", "gauge"),
                ("repro_serve_wal_segments", "gauge"),
                ("repro_serve_wal_bytes", "gauge"),
                ("repro_serve_heartbeat_age_seconds", "gauge"),
                ("repro_serve_stale", "gauge"),
                ("repro_serve_degraded", "gauge"),
                ("repro_sim_schedule_pass_p95_seconds", "gauge"),
                ("repro_sim_events_processed", "gauge"),
        ):
            assert types.get(family) == kind, (family, types.get(family))

    def test_wal_append_labeled_by_kind(self, served):
        _, address = served
        _, _, text = fetch(address, "/metrics")
        _, families = parse_prometheus(text)
        kinds = {dict(labelitems).get("kind")
                 for (name, labelitems)
                 in families["repro_serve_wal_append_seconds"]
                 if name.endswith("_count")}
        assert {"tick", "commit"} <= kinds

    def test_http_latency_labeled_by_route_and_status(self, served):
        _, address = served
        fetch(address, "/status")
        fetch(address, "/nowhere")  # unknown routes collapse to "other"
        _, _, text = fetch(address, "/metrics")
        _, families = parse_prometheus(text)
        series = [dict(items)
                  for (name, items)
                  in families["repro_serve_http_request_seconds"]
                  if name.endswith("_count")]
        assert {"route": "/status", "status": "200"} in series
        assert {"route": "other", "status": "404"} in series
        assert not any(labels["route"] == "/nowhere"
                       for labels in series)

    def test_tick_histogram_count_matches_ticks(self, served):
        daemon, address = served
        _, _, text = fetch(address, "/metrics")
        _, families = parse_prometheus(text)
        count = families["repro_serve_tick_duration_seconds"][
            ("repro_serve_tick_duration_seconds_count", frozenset())]
        assert count == daemon.metrics()["ticks_this_boot"]


class TestContentNegotiation:
    @pytest.fixture
    def served(self, tmp_path):
        with make_daemon(tmp_path, http_port=0) as daemon:
            submit_n(daemon, 1)
            daemon.tick()
            yield daemon, daemon.http.address

    def test_default_is_prometheus_text(self, served):
        _, address = served
        code, ctype, text = fetch(address, "/metrics")
        assert code == 200 and ctype == CONTENT_TYPE_PROMETHEUS
        parse_prometheus(text)

    def test_accept_json_keeps_legacy_document(self, served):
        daemon, address = served
        code, ctype, text = fetch(address, "/metrics",
                                  accept="application/json")
        assert code == 200 and ctype == "application/json"
        body = json.loads(text)
        assert body["ticks"] == 1
        for key in ("wal_segments", "wal_bytes", "store_bytes",
                    "last_snapshot_tick", "snapshot_age_ticks",
                    "snapshot_age_s", "telemetry"):
            assert key in body, key
        assert body["telemetry"] is True
        assert body["wal_segments"] >= 1
        assert body["wal_bytes"] > 0
        assert body["last_snapshot_tick"] == 1
        assert body["snapshot_age_ticks"] == 0

    def test_format_query_overrides(self, served):
        _, address = served
        code, _, text = fetch(address, "/metrics?format=json")
        assert code == 200 and json.loads(text)["ticks"] == 1
        code, _, text = fetch(address, "/metrics?format=live")
        assert code == 200
        names = {fam["name"]
                 for fam in json.loads(text)["families"]}
        assert "repro_serve_tick_duration_seconds" in names

    def test_dashboard_serves_html(self, served):
        _, address = served
        code, ctype, page = fetch(address, "/dashboard")
        assert code == 200 and ctype.startswith("text/html")
        assert page.startswith("<!DOCTYPE html>")
        assert "/metrics?format=live" in page

    def test_healthz_carries_stale_and_degraded(self, served):
        _, address = served
        code, _, text = fetch(address, "/healthz")
        body = json.loads(text)
        assert code == 200
        assert body["stale"] is False
        assert body["degraded"] is None  # the reason string when set
        assert "heartbeat_age_s" in body


class TestTelemetryDisabled:
    @pytest.fixture
    def served(self, tmp_path):
        with make_daemon(tmp_path, http_port=0,
                         telemetry=False) as daemon:
            submit_n(daemon, 1)
            daemon.tick()
            yield daemon, daemon.http.address

    def test_prometheus_is_503_json_still_works(self, served):
        daemon, address = served
        code, _, text = fetch(address, "/metrics")
        assert code == 503 and "disabled" in json.loads(text)["error"]
        code, _, text = fetch(address, "/metrics",
                              accept="application/json")
        assert code == 200
        body = json.loads(text)
        assert body["telemetry"] is False
        assert body["ticks"] == 1

    def test_dashboard_and_live_are_503(self, served):
        _, address = served
        assert fetch(address, "/dashboard")[0] == 503
        assert fetch(address, "/metrics?format=live")[0] == 503

    def test_no_observer_hooks_when_off(self, served):
        daemon, _ = served
        assert daemon.live is None
        assert daemon.profiler is None
        assert daemon.wal.on_append is None
        assert daemon.core.sim.profiler is None


# ----------------------------------------------------------------------
# Bit-identity: telemetry must not perturb scheduling
# ----------------------------------------------------------------------
class TestBitIdentity:
    def _run(self, state_dir, telemetry):
        with make_daemon(state_dir, config=LUCID_CONFIG,
                         telemetry=telemetry) as daemon:
            submit_n(daemon, 6)
            run_to_idle(daemon)
            snapshot = daemon.metrics()
        return (commit_digests(str(state_dir)),
                final_state(str(state_dir)), snapshot)

    def test_lucid_venus_digests_identical_on_vs_off(self, tmp_path):
        digests_on, final_on, metrics_on = self._run(
            tmp_path / "on", telemetry=True)
        digests_off, final_off, metrics_off = self._run(
            tmp_path / "off", telemetry=False)
        assert digests_on == digests_off
        assert final_on["digest"] == final_off["digest"]
        assert final_on["clean"] and final_off["clean"]
        assert metrics_on["jobs_finished"] == \
            metrics_off["jobs_finished"] == 6
        assert metrics_on["sim_now"] == metrics_off["sim_now"]
        assert metrics_on["events_processed"] == \
            metrics_off["events_processed"]


# ----------------------------------------------------------------------
# Correlated structured logs
# ----------------------------------------------------------------------
class TestCorrelatedLogs:
    def test_tick_records_carry_correlation_ids(self, tmp_path):
        stream = io.StringIO()
        configure_logging("debug", stream=stream, fmt="json")
        try:
            with make_daemon(tmp_path) as daemon:
                submit_n(daemon, 2)
                run_to_idle(daemon)
        finally:
            configure_logging("warning", fmt="text")
        lines = [json.loads(line)
                 for line in stream.getvalue().splitlines()]
        assert lines, "debug run produced no log lines"
        ticked = [line for line in lines if "tick" in line]
        assert ticked, "no log line carried a tick correlation id"
        assert any("wal_segment" in line for line in ticked)
        assert all(isinstance(line["tick"], int) for line in ticked)

    def test_recovery_replay_logs_are_correlated(self, tmp_path):
        # snapshot_every high enough that the crashed tick lives only
        # in the WAL — recovery must actually replay it.
        with make_daemon(tmp_path, snapshot_every=100) as daemon:
            submit_n(daemon, 2)
            daemon.tick()
            daemon.wal.close()
            daemon.store.close()
            daemon._started = False  # crash: no clean shutdown
        stream = io.StringIO()
        configure_logging("debug", stream=stream, fmt="json")
        try:
            with make_daemon(tmp_path,
                             snapshot_every=100) as revived:
                assert revived.recovery.replayed_ticks >= 1
        finally:
            configure_logging("warning", fmt="text")
        lines = [json.loads(line)
                 for line in stream.getvalue().splitlines()]
        replayed = [line for line in lines
                    if "wal_segment" in line
                    and line["logger"].endswith("recovery")]
        assert replayed, "recovery replay emitted no correlated lines"


# ----------------------------------------------------------------------
# serve-status CLI
# ----------------------------------------------------------------------
class TestServeStatusCli:
    def test_against_live_daemon(self, tmp_path, capsys):
        from repro import cli
        with make_daemon(tmp_path, http_port=0) as daemon:
            submit_n(daemon, 2)
            run_to_idle(daemon)
            host, port = daemon.http.address
            url = f"http://{host}:{port}"
            code = cli.main(["serve-status", "--url", url])
            out = capsys.readouterr().out
            assert code == 0
            assert "healthy" in out
            assert "WAL" in out and "dashboard" in out
            code = cli.main(["serve-status", "--url", url,
                             "--format", "json"])
            doc = json.loads(capsys.readouterr().out)
            assert code == 0
            assert doc["healthy"] is True
            assert doc["metrics"]["telemetry"] is True

    def test_unreachable_is_exit_2(self, capsys):
        from repro import cli
        code = cli.main(["serve-status",
                         "--url", "http://127.0.0.1:1",
                         "--timeout", "0.5"])
        assert code == 2
        assert "cannot scrape" in capsys.readouterr().err
