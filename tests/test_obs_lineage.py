"""Tests for the causal event lineage and exact JCT decomposition.

Covers the ISSUE-10 acceptance properties: every component of every
completed job's decomposition is non-negative and the components sum
to the job's JCT within 1e-9 (fifo / tiresias / lucid on venus@120,
faults on and off); attaching a :class:`LineageCollector` leaves the
simulation bit-identical to ``lineage=None``; the offline
trace-reconstruction path (``lineage_from_trace``) reproduces the live
decompositions; main-queue waits name blockers; the critical path is a
causally ordered chain ending at the terminal event; and the
``repro why`` / filtered ``repro trace`` / ``repro explain`` CLI
surfaces behave as documented.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import quick_simulation
from repro.cli import main
from repro.obs import RingBufferTracer
from repro.obs.lineage import (
    COMPONENTS,
    LINEAGE_CAUSE_SCHEMA,
    LineageCollector,
    blame_table,
    critical_path,
    decompose,
    decompose_all,
    lineage_from_trace,
)
from repro.obs.tracer import events_from_dicts, read_jsonl
from repro.sim.events import EventKind

FAULTS = "node_mtbf=43200,node_mttr=1800,crash_rate=0.3,seed=7"

#: Memoized venus@120 runs — the property matrix reuses them freely.
_RUNS = {}


def run_with_lineage(scheduler, faults=None, seed=1, n_jobs=120):
    key = (scheduler, faults, seed, n_jobs)
    if key not in _RUNS:
        collector = LineageCollector()
        result = quick_simulation(trace="venus", scheduler=scheduler,
                                  n_jobs=n_jobs, seed=seed,
                                  faults=faults, lineage=collector)
        _RUNS[key] = (collector, result)
    return _RUNS[key]


class TestDecompositionProperties:
    @pytest.mark.parametrize("scheduler", ["fifo", "tiresias", "lucid"])
    @pytest.mark.parametrize("faults", [None, FAULTS])
    def test_components_nonneg_and_sum_to_jct(self, scheduler, faults):
        collector, result = run_with_lineage(scheduler, faults)
        decompositions = decompose_all(collector)
        assert decompositions, "no completed jobs decomposed"
        for record in result.records:
            dec = decompositions.get(record.job_id)
            if dec is None or dec.outcome != "finished":
                continue
            for name, value in dec.components().items():
                assert value >= -1e-9, (
                    f"{scheduler}/{faults}: job {record.job_id} "
                    f"component {name} negative: {value}")
            assert dec.total() == pytest.approx(dec.jct, abs=1e-9)
            assert dec.jct == pytest.approx(record.jct, abs=1e-9)

    @pytest.mark.parametrize("scheduler", ["fifo", "lucid"])
    def test_every_completed_job_is_decomposable(self, scheduler):
        collector, result = run_with_lineage(scheduler)
        completed = set(collector.completed_job_ids())
        finished = {rec.job_id for rec in result.records}
        assert finished <= completed

    def test_blockers_partition_main_queue_wait(self):
        # venus@120 is uncontended; 300 jobs force main-queue waits.
        collector, _ = run_with_lineage("fifo", n_jobs=300)
        saw_blocked = False
        for dec in decompose_all(collector).values():
            attributed = math.fsum(dec.blockers.values())
            assert attributed + dec.unattributed_wait == pytest.approx(
                dec.pending_main, abs=1e-6)
            if dec.pending_main > 1.0 and dec.blockers:
                saw_blocked = True
                assert all(v > 0 for v in dec.blockers.values())
                assert dec.job_id not in dec.blockers
        assert saw_blocked, "contended fifo run named no blockers"

    def test_blame_table_aggregates_blockers(self):
        collector, _ = run_with_lineage("fifo", n_jobs=300)
        decs = decompose_all(collector)
        rows = blame_table(decs, top=5)
        assert rows, "no blame rows on a contended run"
        induced = [row.induced_wait for row in rows]
        assert induced == sorted(induced, reverse=True)
        for row in rows:
            assert row.n_victims >= 1
            total = math.fsum(d.blockers.get(row.job_id, 0.0)
                              for d in decs.values())
            assert row.induced_wait == pytest.approx(total)


class TestBitIdentity:
    def test_lineage_off_is_bit_identical(self):
        base = quick_simulation(trace="venus", scheduler="lucid",
                                n_jobs=120, seed=3, lineage=None)
        observed = quick_simulation(trace="venus", scheduler="lucid",
                                    n_jobs=120, seed=3,
                                    lineage=LineageCollector())
        assert base.makespan == observed.makespan
        assert len(base.records) == len(observed.records)
        for lhs, rhs in zip(base.records, observed.records):
            assert lhs.job_id == rhs.job_id
            assert lhs.jct == rhs.jct
            assert lhs.queue_delay == rhs.queue_delay
            assert lhs.preemptions == rhs.preemptions

    def test_bit_identical_under_faults(self):
        base = quick_simulation(trace="venus", scheduler="tiresias",
                                n_jobs=120, seed=3, faults=FAULTS)
        observed = quick_simulation(trace="venus", scheduler="tiresias",
                                    n_jobs=120, seed=3, faults=FAULTS,
                                    lineage=LineageCollector())
        assert base.makespan == observed.makespan
        assert [(r.job_id, r.jct, r.preemptions) for r in base.records] \
            == [(r.job_id, r.jct, r.preemptions)
                for r in observed.records]


class TestOfflineParity:
    def test_trace_roundtrip_matches_live(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tracer = RingBufferTracer(sink=path)
        live = LineageCollector()
        quick_simulation(trace="venus", scheduler="lucid", n_jobs=120,
                         seed=1, tracer=tracer, lineage=live)
        tracer.close()
        offline = lineage_from_trace(
            events_from_dicts(read_jsonl(path)))
        live_decs = decompose_all(live)
        off_decs = decompose_all(offline)
        assert set(off_decs) == set(live_decs)
        for job_id, lhs in live_decs.items():
            rhs = off_decs[job_id]
            assert rhs.jct == pytest.approx(lhs.jct, abs=1e-9)
            for name in COMPONENTS:
                assert getattr(rhs, name) == pytest.approx(
                    getattr(lhs, name), abs=1e-6), (job_id, name)
            assert rhs.blockers.keys() == lhs.blockers.keys()


class TestCriticalPath:
    def test_path_is_ordered_and_terminal(self):
        collector, _ = run_with_lineage("lucid")
        job_id = collector.completed_job_ids()[0]
        chain = critical_path(collector, job_id)
        assert chain, "empty critical path"
        times = [e.time for e in chain]
        assert times == sorted(times)
        assert chain[-1].job_id == job_id
        assert chain[-1].kind in ("finish", "job_failed")
        for parent, child in zip(chain, chain[1:]):
            assert parent.event_id in child.causes

    def test_unknown_job_raises(self):
        collector, _ = run_with_lineage("lucid")
        with pytest.raises(KeyError):
            decompose(collector, 10**9)

    def test_non_terminal_job_raises(self):
        collector = LineageCollector()
        collector.on_submit(0.0, 1, gpu_num=1, vc="vc1")
        with pytest.raises(ValueError):
            decompose(collector, 1)


class TestCauseSchema:
    def test_schema_covers_every_event_kind(self):
        assert set(LINEAGE_CAUSE_SCHEMA) == {k.value for k in EventKind}

    def test_event_dicts_are_json_clean(self):
        collector, _ = run_with_lineage("lucid")
        event = collector.events[0]
        payload = json.loads(json.dumps(event.as_dict()))
        assert payload["id"] == event.event_id
        assert payload["kind"] == event.kind
        assert payload["causes"] == list(event.causes)


class TestDropSafety:
    def test_ring_cap_drops_oldest_and_counts(self):
        collector = LineageCollector(max_events=4)
        quick_simulation(trace="venus", scheduler="fifo", n_jobs=40,
                         seed=2, lineage=collector)
        assert len(collector.events) <= 4
        assert collector.n_dropped > 0


class TestWhyCli:
    def test_why_text_output(self, capsys):
        code = main(["why", "370", "--trace", "venus", "--jobs", "120",
                     "--scheduler", "lucid", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for name in COMPONENTS:
            assert name in out
        assert "total" in out
        assert "critical path" in out

    def test_why_json_sums_to_jct(self, capsys):
        code = main(["why", "370", "--trace", "venus", "--jobs", "120",
                     "--scheduler", "lucid", "--seed", "1",
                     "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        total = math.fsum(doc["decomposition"]["components"].values())
        assert total == pytest.approx(doc["decomposition"]["jct"],
                                      abs=1e-9)
        assert doc["source"] == "lucid × venus"
        assert doc["critical_path"]

    def test_why_offline_from_export(self, tmp_path, capsys):
        code = main(["trace", "--trace", "venus", "--jobs", "60",
                     "--scheduler", "lucid", "--seed", "1",
                     "--out", str(tmp_path)])
        assert code == 0
        events = str(tmp_path / "events.jsonl")
        capsys.readouterr()
        collector = lineage_from_trace(
            events_from_dicts(read_jsonl(events)))
        job_id = collector.completed_job_ids()[0]
        code = main(["why", str(job_id), "--trace", events,
                     "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["source"] == events
        total = math.fsum(doc["decomposition"]["components"].values())
        assert total == pytest.approx(doc["decomposition"]["jct"],
                                      abs=1e-9)

    def test_why_unknown_id_suggests(self, capsys):
        code = main(["why", "371", "--trace", "venus", "--jobs", "60",
                     "--scheduler", "fifo", "--seed", "1"])
        assert code == 1
        err = capsys.readouterr().err
        assert "did you mean" in err


class TestTraceFilters:
    def test_job_and_kind_filters(self, tmp_path, capsys):
        code = main(["trace", "--trace", "venus", "--jobs", "40",
                     "--scheduler", "fifo", "--seed", "3",
                     "--out", str(tmp_path / "a"),
                     "--job", "201", "--kind", "start",
                     "--kind", "finish"])
        assert code == 0
        out = capsys.readouterr().out
        assert "retained events match" in out
        assert "job=201" in out

    def test_filter_with_no_matches_reports_zero(self, tmp_path,
                                                 capsys):
        code = main(["trace", "--trace", "venus", "--jobs", "40",
                     "--scheduler", "fifo", "--seed", "3",
                     "--out", str(tmp_path / "b"),
                     "--job", "999999"])
        assert code == 0
        assert "0 of" in capsys.readouterr().out


class TestExplainSuggestions:
    def test_unknown_id_offers_nearest(self, capsys):
        code = main(["explain", "2011", "--trace", "venus",
                     "--jobs", "40", "--scheduler", "lucid",
                     "--seed", "3"])
        assert code != 0
        assert "did you mean" in capsys.readouterr().err
