"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.traces import TraceGenerator, TraceSpec
from repro.workloads import InterferenceModel, Job, ResourceProfile


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_spec():
    """A small, fast trace spec used across integration tests."""
    return TraceSpec(
        name="tiny", n_nodes=6, n_vcs=2, n_jobs=120, full_n_jobs=120,
        mean_duration=1800.0, span_days=0.5, n_users=12, seed=99,
    )


@pytest.fixture
def tiny_generator(tiny_spec):
    return TraceGenerator(tiny_spec)


@pytest.fixture
def small_cluster():
    return Cluster({"vc1": 2, "vc2": 1})


@pytest.fixture
def interference():
    return InterferenceModel()


def make_job(job_id=1, duration=1000.0, gpu_num=1, submit_time=0.0,
             vc="vc1", user="alice", name="job", gpu_util=40.0,
             mem_util=25.0, mem_mb=3000.0, amp=False) -> Job:
    """Hand-rolled job for unit tests."""
    return Job(
        job_id=job_id, name=name, user=user, vc=vc,
        submit_time=submit_time, duration=duration, gpu_num=gpu_num,
        profile=ResourceProfile(gpu_util, mem_util, mem_mb, amp), amp=amp,
    )


@pytest.fixture
def job_factory():
    return make_job
