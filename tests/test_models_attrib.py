"""Attribution correctness: contributions must sum to the prediction.

The whole value of :mod:`repro.models.attrib` rests on one invariant:
``bias + sum(contributions) == predicted`` within 1e-9, and ``predicted``
matches the model's own ``predict`` output.  These tests property-check
that over seeded random inputs for every model family.
"""

import math

import numpy as np
import pytest

from repro.models import (
    Attribution,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GA2MRegressor,
    GradientBoostingRegressor,
    IsotonicRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
    attribute_model,
)

TOL = 1e-9
N_PROBES = 25


def _regression_data(rng, n=200, d=5):
    X = rng.normal(size=(n, d))
    y = (2.0 * X[:, 0] - 1.5 * X[:, 1] ** 2 + np.sin(X[:, 2])
         + rng.normal(scale=0.1, size=n))
    if d >= 5:
        y = y + 0.5 * X[:, 3] * X[:, 4]
    return X, y


def _classification_data(rng, n=200, d=4):
    X = rng.normal(size=(n, d))
    score = X[:, 0] + 0.5 * X[:, 1] - X[:, 2]
    y = np.digitize(score, [-0.5, 0.5])  # classes 0/1/2
    return X, y


def _probes(rng, d, k=N_PROBES):
    return rng.normal(scale=1.5, size=(k, d))


def _check_exact(attribution, expected):
    assert isinstance(attribution, Attribution)
    assert attribution.check(TOL), \
        f"residual {attribution.residual()} exceeds {TOL}"
    assert attribution.predicted == pytest.approx(expected, abs=1e-9)


class TestTreeAttribution:
    def test_regressor_sums_to_prediction(self):
        rng = np.random.default_rng(11)
        X, y = _regression_data(rng)
        model = DecisionTreeRegressor(max_depth=6).fit(X, y)
        for x in _probes(rng, X.shape[1]):
            attribution = model.attribute(x)
            _check_exact(attribution, float(model.predict([x])[0]))

    def test_classifier_expected_value(self):
        rng = np.random.default_rng(12)
        X, y = _classification_data(rng)
        model = DecisionTreeClassifier(max_depth=5).fit(X, y)
        for x in _probes(rng, X.shape[1]):
            probs = model.predict_proba([x])[0]
            expected = float(np.dot(model.classes_, probs))
            _check_exact(model.attribute(x), expected)

    def test_classifier_class_probability(self):
        rng = np.random.default_rng(13)
        X, y = _classification_data(rng)
        model = DecisionTreeClassifier(max_depth=5).fit(X, y)
        for x in _probes(rng, X.shape[1], k=10):
            for c in range(len(model.classes_)):
                probs = model.predict_proba([x])[0]
                _check_exact(model.attribute(x, class_index=c),
                             float(probs[c]))

    def test_feature_names_flow_through(self):
        rng = np.random.default_rng(14)
        X, y = _regression_data(rng, d=3)
        model = DecisionTreeRegressor(max_depth=4).fit(X, y)
        names = ["alpha", "beta", "gamma"]
        attribution = model.attribute(X[0], feature_names=names)
        assert attribution.features == ("alpha", "beta", "gamma")
        assert all(name in names for name, _ in attribution.terms)

    def test_class_index_out_of_range(self):
        rng = np.random.default_rng(15)
        X, y = _classification_data(rng)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        with pytest.raises(ValueError):
            model.attribute(X[0], class_index=99)


class TestForestAttribution:
    def test_regressor_sums_to_prediction(self):
        rng = np.random.default_rng(21)
        X, y = _regression_data(rng)
        model = RandomForestRegressor(n_estimators=12, max_depth=5,
                                      random_state=3).fit(X, y)
        for x in _probes(rng, X.shape[1], k=10):
            _check_exact(model.attribute(x), float(model.predict([x])[0]))

    def test_classifier_class_probability(self):
        rng = np.random.default_rng(22)
        X, y = _classification_data(rng)
        model = RandomForestClassifier(n_estimators=10, max_depth=4,
                                       random_state=5).fit(X, y)
        for x in _probes(rng, X.shape[1], k=8):
            probs = model.predict_proba([x])[0]
            for c in range(len(model.classes_)):
                _check_exact(model.attribute(x, class_index=c),
                             float(probs[c]))

    def test_classifier_expected_value(self):
        rng = np.random.default_rng(23)
        X, y = _classification_data(rng)
        model = RandomForestClassifier(n_estimators=10, max_depth=4,
                                       random_state=7).fit(X, y)
        for x in _probes(rng, X.shape[1], k=10):
            probs = model.predict_proba([x])[0]
            expected = float(np.dot(model.classes_, probs))
            _check_exact(model.attribute(x), expected)


class TestBoostingAttribution:
    @pytest.mark.parametrize("reg_lambda", [0.0, 1.0])
    def test_sums_to_prediction(self, reg_lambda):
        rng = np.random.default_rng(31)
        X, y = _regression_data(rng)
        model = GradientBoostingRegressor(
            n_estimators=25, max_depth=3, reg_lambda=reg_lambda,
            random_state=2).fit(X, y)
        for x in _probes(rng, X.shape[1], k=10):
            _check_exact(model.attribute(x), float(model.predict([x])[0]))


class TestGAMAttribution:
    @pytest.mark.parametrize("n_interactions", [0, 2])
    def test_sums_to_prediction(self, n_interactions):
        rng = np.random.default_rng(41)
        X, y = _regression_data(rng)
        model = GA2MRegressor(n_rounds=30, n_interactions=n_interactions,
                              feature_names=list("abcde")).fit(X, y)
        for x in _probes(rng, X.shape[1], k=10):
            attribution = model.attribute(x)
            _check_exact(attribution, float(model.predict([x])[0]))
            assert attribution.features == ("a", "b", "c", "d", "e")
        if n_interactions:
            names = [name for name, _ in model.attribute(X[0]).terms]
            assert any(" x " in name for name in names)


class TestIsotonicAttribution:
    def test_sums_to_prediction(self):
        rng = np.random.default_rng(51)
        xs = rng.uniform(0, 10, size=80)
        ys = 2.0 * xs + rng.normal(scale=1.0, size=80)
        model = IsotonicRegressor().fit(xs, ys)
        for x in rng.uniform(-2, 12, size=N_PROBES):
            attribution = model.attribute([x], feature_name="load")
            _check_exact(attribution, float(model.predict([x])[0]))
            assert attribution.features == ("load",)

    def test_prediction_is_monotone_and_clamped(self):
        model = IsotonicRegressor().fit([1.0, 2.0, 3.0], [1.0, 3.0, 2.0])
        lo, hi = model.predict([-100.0])[0], model.predict([100.0])[0]
        assert lo <= hi
        preds = model.predict([0.0, 1.5, 2.5, 9.0])
        assert np.all(np.diff(preds) >= -1e-12)


class TestDispatcherAndRecord:
    def test_dispatcher_covers_every_family(self):
        rng = np.random.default_rng(61)
        X, y = _regression_data(rng, n=120)
        Xc, yc = _classification_data(rng, n=120)
        cases = [
            (DecisionTreeRegressor(max_depth=4).fit(X, y), X[0], "tree"),
            (DecisionTreeClassifier(max_depth=4).fit(Xc, yc), Xc[0], "tree"),
            (RandomForestRegressor(n_estimators=5).fit(X, y), X[0],
             "forest"),
            (GradientBoostingRegressor(n_estimators=10).fit(X, y), X[0],
             "boosting"),
            (GA2MRegressor(n_rounds=10).fit(X, y), X[0], "gam"),
            (IsotonicRegressor().fit(X[:, 0], y), X[:1, 0], "isotonic"),
        ]
        for model, x, tag in cases:
            attribution = attribute_model(model, x)
            assert attribution.model == tag
            assert attribution.check(TOL)

    def test_dispatcher_rejects_unknown(self):
        with pytest.raises(TypeError):
            attribute_model(object(), [1.0])

    def test_round_trip_and_render(self):
        attribution = Attribution(
            model="gam", predicted=0.83, bias=0.64,
            features=("gpu_util", "hour"), values=(0.7, float("nan")),
            terms=(("gpu_util", 0.31), ("hour", -0.12)), note="probe")
        data = attribution.to_dict()
        assert data["values"][1] is None  # NaN must serialize as null
        clone = Attribution.from_dict(
            {**data, "values": [0.7, float("nan")]})
        assert clone.terms == attribution.terms
        assert clone.note == "probe"
        text = attribution.render()
        assert "+0.31 gpu_util" in text
        assert "-0.12 hour" in text
        assert "bias 0.64" in text

    def test_top_orders_by_magnitude(self):
        attribution = Attribution(
            model="tree", predicted=1.0, bias=0.5,
            features=("a", "b", "c"), values=(1.0, 2.0, 3.0),
            terms=(("a", 0.1), ("b", -0.3), ("c", 0.2)))
        assert [name for name, _ in attribution.top()] == ["b", "c", "a"]
        assert len(attribution.top(2)) == 2

    def test_value_of_unknown_feature(self):
        attribution = Attribution(model="tree", predicted=1.0, bias=1.0,
                                  features=("a",), values=(2.0,))
        assert attribution.value_of("a") == 2.0
        with pytest.raises(KeyError):
            attribution.value_of("zz")
