"""Tests for heterogeneous GPU support (paper §6 extension)."""

import numpy as np
import pytest

from repro.cluster.hetero import (
    A100,
    GPU_TYPES,
    GPUType,
    K80,
    RTX3090,
    V100,
    allocation_speed,
    build_heterogeneous_cluster,
    find_consolidated_typed,
    node_speed,
)
from repro.core.hetero_lucid import HeteroLucidScheduler
from repro.core import LucidScheduler
from repro.sim import Simulator
from repro.traces import TraceGenerator, TraceSpec

from conftest import make_job


@pytest.fixture
def mixed_cluster():
    return build_heterogeneous_cluster({
        "vc1": [(A100, 1), (RTX3090, 1), (K80, 2)],
    })


class TestGPUType:
    def test_presets(self):
        assert GPU_TYPES["A100"].speed_factor > GPU_TYPES["V100"].speed_factor
        assert GPU_TYPES["K80"].speed_factor < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUType("bad", speed_factor=0.0, memory_mb=1)
        with pytest.raises(ValueError):
            GPUType("bad", speed_factor=1.0, memory_mb=0)


class TestHeteroCluster:
    def test_layout_applied(self, mixed_cluster):
        speeds = sorted(node_speed(n) for n in mixed_cluster.nodes)
        assert speeds == [0.25, 0.25, 1.0, 1.7]
        a100_node = next(n for n in mixed_cluster.nodes
                         if node_speed(n) == 1.7)
        assert all(g.speed_factor == 1.7 for g in a100_node.gpus)
        assert a100_node.gpus[0].memory_mb == A100.memory_mb

    def test_allocation_speed_straggler(self, mixed_cluster):
        fast = next(n for n in mixed_cluster.nodes if node_speed(n) == 1.7)
        slow = next(n for n in mixed_cluster.nodes if node_speed(n) == 0.25)
        assert allocation_speed(fast.gpus) == 1.7
        assert allocation_speed(fast.gpus[:2] + slow.gpus[:2]) == 0.25


class TestTypedPlacement:
    def test_prefer_fast(self, mixed_cluster):
        gpus = find_consolidated_typed(mixed_cluster, 4, prefer_fast=True)
        assert allocation_speed(gpus) == 1.7

    def test_prefer_slow(self, mixed_cluster):
        gpus = find_consolidated_typed(mixed_cluster, 4, prefer_fast=False)
        assert allocation_speed(gpus) == 0.25

    def test_memory_filter_excludes_small_gpus(self, mixed_cluster):
        gpus = find_consolidated_typed(mixed_cluster, 4, prefer_fast=False,
                                       min_memory_mb=20_000.0)
        # K80 (12 GB) is excluded; slowest eligible is the 3090.
        assert allocation_speed(gpus) == 1.0

    def test_falls_through_full_tiers(self, mixed_cluster):
        fast = next(n for n in mixed_cluster.nodes if node_speed(n) == 1.7)
        for gpu in fast.gpus:
            gpu.attach(99, 100.0)
        gpus = find_consolidated_typed(mixed_cluster, 8, prefer_fast=True)
        assert allocation_speed(gpus) == 1.0  # next tier down

    def test_multi_node_stays_in_one_tier(self, mixed_cluster):
        gpus = find_consolidated_typed(mixed_cluster, 16, prefer_fast=False)
        assert gpus is not None
        assert allocation_speed(gpus) == 0.25
        assert len({g.node_id for g in gpus}) == 2


class TestTolerantPlacement:
    def test_short_job_takes_anything(self, mixed_cluster):
        from repro.cluster.hetero import find_tolerant_placement
        # Fill every tier except the K80s.
        for node in mixed_cluster.nodes:
            if node_speed(node) > 0.25:
                for gpu in node.gpus:
                    gpu.attach(99, 100.0)
        gpus = find_tolerant_placement(mixed_cluster, 1, est_duration=120.0)
        assert gpus is not None
        assert allocation_speed(gpus) == 0.25

    def test_long_job_refuses_slow_tier(self, mixed_cluster):
        from repro.cluster.hetero import find_tolerant_placement
        for node in mixed_cluster.nodes:
            if node_speed(node) > 0.25:
                for gpu in node.gpus:
                    gpu.attach(99, 100.0)
        # A 20 h job on a K80 would cost ~3x extra: refuse and wait.
        gpus = find_tolerant_placement(mixed_cluster, 1,
                                       est_duration=20 * 3600.0)
        assert gpus is None

    def test_fastest_free_preferred(self, mixed_cluster):
        from repro.cluster.hetero import find_tolerant_placement
        gpus = find_tolerant_placement(mixed_cluster, 2, est_duration=60.0)
        assert allocation_speed(gpus) == 1.7

    def test_est_duration_validated(self, mixed_cluster):
        from repro.cluster.hetero import find_tolerant_placement
        with pytest.raises(ValueError):
            find_tolerant_placement(mixed_cluster, 1, est_duration=0.0)


class TestEngineIntegration:
    def test_slow_gpu_slows_job(self, mixed_cluster):
        from repro.schedulers.base import Scheduler

        class PlaceOnSlow(Scheduler):
            def schedule(self, now):
                for job in list(self.queue):
                    gpus = find_consolidated_typed(
                        self.engine.cluster, job.gpu_num, prefer_fast=False)
                    self.engine.start_job(job, gpus)
                    self.queue.remove(job)

        job = make_job(1, duration=1000.0, gpu_num=1)
        result = Simulator(mixed_cluster, [job], PlaceOnSlow()).run()
        assert result.records[0].jct == pytest.approx(1000.0 / 0.25)

    def test_fast_gpu_speeds_job(self, mixed_cluster):
        from repro.schedulers.base import Scheduler

        class PlaceOnFast(Scheduler):
            def schedule(self, now):
                for job in list(self.queue):
                    gpus = find_consolidated_typed(
                        self.engine.cluster, job.gpu_num, prefer_fast=True)
                    self.engine.start_job(job, gpus)
                    self.queue.remove(job)

        job = make_job(1, duration=1000.0, gpu_num=1)
        result = Simulator(mixed_cluster, [job], PlaceOnFast()).run()
        assert result.records[0].jct == pytest.approx(1000.0 / 1.7)


HETERO_SPEC = TraceSpec(
    name="hetero", n_nodes=8, n_vcs=1, n_jobs=350, full_n_jobs=350,
    mean_duration=2500.0, span_days=0.5, n_users=16, seed=555,
)


def _hetero_cluster():
    return build_heterogeneous_cluster({
        "vc01": [(A100, 2), (RTX3090, 3), (V100, 2), (K80, 1)],
    })


def _scarce_cluster():
    """Mostly legacy silicon with a couple of fast racks — the scenario
    where generation-aware placement matters most."""
    return build_heterogeneous_cluster({
        "vc01": [(K80, 6), (A100, 2)],
    })


class TestHeteroLucid:
    def test_runs_to_completion(self):
        gen = TraceGenerator(HETERO_SPEC)
        history = gen.generate_history()
        jobs = gen.generate()
        scheduler = HeteroLucidScheduler(history)
        result = Simulator(_hetero_cluster(), jobs, scheduler).run()
        assert result.n_jobs == HETERO_SPEC.n_jobs

    def test_beats_blind_when_fast_gpus_scarce(self):
        def run(scheduler_cls):
            gen = TraceGenerator(HETERO_SPEC)
            history = gen.generate_history()
            jobs = gen.generate()
            return Simulator(_scarce_cluster(), jobs,
                             scheduler_cls(history)).run()

        aware = run(HeteroLucidScheduler)
        blind = run(LucidScheduler)
        # On a legacy-heavy cluster, keeping long jobs off the K80s is a
        # large win (blind placement strands them at 0.25x for hours).
        assert aware.avg_jct < blind.avg_jct * 0.8

    def test_competitive_on_fast_rich_cluster(self):
        def run(scheduler_cls):
            gen = TraceGenerator(HETERO_SPEC)
            history = gen.generate_history()
            jobs = gen.generate()
            return Simulator(_hetero_cluster(), jobs,
                             scheduler_cls(history)).run()

        aware = run(HeteroLucidScheduler)
        blind = run(LucidScheduler)
        # When fast GPUs are plentiful, type-blind best-fit is already
        # near-optimal; awareness must stay competitive.
        assert aware.avg_jct <= blind.avg_jct * 1.1

    def test_long_jobs_land_on_fast_gpus(self):
        gen = TraceGenerator(HETERO_SPEC)
        history = gen.generate_history()
        jobs = gen.generate()
        scheduler = HeteroLucidScheduler(history)
        cluster = _scarce_cluster()
        sim = Simulator(cluster, jobs, scheduler)
        placements = {}
        original = sim.start_job

        def spy(job, gpus, **kwargs):
            if not kwargs.get("profiling"):
                placements[job.job_id] = allocation_speed(gpus)
            return original(job, gpus, **kwargs)

        sim.start_job = spy
        sim.run()
        by_job = {j.job_id: j for j in jobs}
        long_speeds = [v for jid, v in placements.items()
                       if by_job[jid].duration > 4 * 3600]
        short_speeds = [v for jid, v in placements.items()
                        if by_job[jid].duration < 600]
        assert long_speeds and short_speeds
        assert np.mean(long_speeds) > np.mean(short_speeds)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            HeteroLucidScheduler([make_job(1)], max_extra_fraction=-1.0)
