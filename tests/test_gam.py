"""Tests for the GA²M additive model."""

import numpy as np
import pytest

from repro.models.gam import GA2MRegressor
from repro.models.isotonic import is_monotonic
from repro.models.metrics import r2_score


@pytest.fixture(scope="module")
def additive_data():
    rng = np.random.default_rng(11)
    X = rng.uniform(-2, 2, size=(800, 3))
    y = 2 * X[:, 0] + np.sin(3 * X[:, 1]) * 2 + rng.normal(0, 0.1, 800)
    return X, y


@pytest.fixture(scope="module")
def interaction_data():
    rng = np.random.default_rng(12)
    X = rng.uniform(-1, 1, size=(1000, 3))
    y = X[:, 0] * X[:, 1] * 4 + rng.normal(0, 0.1, 1000)  # pure interaction
    return X, y


class TestFitting:
    def test_fits_additive_target(self, additive_data):
        X, y = additive_data
        model = GA2MRegressor(n_rounds=120).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_generalizes(self, additive_data):
        X, y = additive_data
        model = GA2MRegressor(n_rounds=120).fit(X[:600], y[:600])
        assert r2_score(y[600:], model.predict(X[600:])) > 0.9

    def test_interactions_capture_products(self, interaction_data):
        X, y = interaction_data
        gam = GA2MRegressor(n_rounds=100, n_interactions=0).fit(X, y)
        ga2m = GA2MRegressor(n_rounds=100, n_interactions=1).fit(X, y)
        r2_plain = r2_score(y, gam.predict(X))
        r2_pair = r2_score(y, ga2m.predict(X))
        assert r2_pair > r2_plain + 0.2
        assert ga2m.interactions_[0].features == (0, 1) or \
            ga2m.interactions_[0].features == (1, 0)

    def test_constant_target(self):
        X = np.arange(50, dtype=float).reshape(-1, 1)
        y = np.full(50, 7.0)
        model = GA2MRegressor(n_rounds=10).fit(X, y)
        assert np.allclose(model.predict(X), 7.0, atol=1e-6)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            GA2MRegressor().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            GA2MRegressor(n_rounds=0)
        with pytest.raises(ValueError):
            GA2MRegressor(feature_names=["a"]).fit(np.zeros((5, 2)), np.zeros(5))

    def test_predict_feature_count_checked(self, additive_data):
        X, y = additive_data
        model = GA2MRegressor(n_rounds=10).fit(X, y)
        with pytest.raises(ValueError, match="expected 3"):
            model.predict(np.zeros((2, 5)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GA2MRegressor().predict([[1.0]])


class TestInterpretability:
    def test_global_explanation_importances(self, additive_data):
        X, y = additive_data
        model = GA2MRegressor(n_rounds=120,
                              feature_names=["slope", "wave", "noise"]).fit(X, y)
        explanation = model.explain_global()
        top = explanation.top_features(2)
        assert {name for name, _ in top} == {"slope", "wave"}
        # The irrelevant feature carries (almost) no importance.
        assert explanation.importances[2] < 0.1 * explanation.importances[0]

    def test_local_explanation_sums_to_prediction(self, additive_data):
        X, y = additive_data
        model = GA2MRegressor(n_rounds=80, n_interactions=1).fit(X, y)
        for i in (0, 17, 99):
            local = model.explain_local(X[i])
            assert local.prediction == pytest.approx(
                float(model.predict(X[i:i + 1])[0]), rel=1e-9)

    def test_local_explanation_sorting(self, additive_data):
        X, y = additive_data
        model = GA2MRegressor(n_rounds=60).fit(X, y)
        ranked = model.explain_local(X[0]).sorted_by_magnitude()
        magnitudes = [abs(score) for _, _, score in ranked]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_shape_function_recovers_linear_trend(self, additive_data):
        X, y = additive_data
        model = GA2MRegressor(n_rounds=120).fit(X, y)
        _, values = model.shape_function(0)
        # Feature 0 contributes 2*x: its shape must rise start to end.
        assert values[-1] - values[0] > 4.0

    def test_shapes_centered(self, additive_data):
        """Weighted mean of each shape is ~0 (intercept holds the offset)."""
        X, y = additive_data
        model = GA2MRegressor(n_rounds=60).fit(X, y)
        for shape in model.shapes_:
            mean = np.average(shape.values, weights=shape.bin_counts)
            assert abs(mean) < 1e-8


class TestMonotonicConstraint:
    def test_constraint_makes_shape_monotone(self, rng):
        X = rng.uniform(0, 10, size=(500, 2))
        y = X[:, 0] * 2 + rng.normal(0, 3.0, 500)  # noisy increasing trend
        model = GA2MRegressor(n_rounds=100).fit(X, y)
        model.constrain_monotonic(0, increasing=True)
        _, values = model.shape_function(0)
        assert is_monotonic(values, increasing=True)

    def test_constraint_preserves_accuracy(self, rng):
        X = rng.uniform(0, 10, size=(500, 2))
        y = X[:, 0] * 2 + rng.normal(0, 1.0, 500)
        model = GA2MRegressor(n_rounds=100).fit(X, y)
        before = r2_score(y, model.predict(X))
        model.constrain_monotonic(0, increasing=True)
        after = r2_score(y, model.predict(X))
        assert after > before - 0.05
