"""Tests for starvation relief: relaxed placement + fragmentation penalty."""

import pytest

from repro.cluster import Cluster
from repro.cluster.placement import find_relaxed
from repro.core.orchestrator import ResourceOrchestrator
from repro.sim import Simulator
from repro.schedulers.base import Scheduler

from conftest import make_job
from test_binder import engine_with_running


class TestFindRelaxed:
    def test_spans_nodes_when_needed(self):
        cluster = Cluster({"a": 3})
        # Occupy 4 GPUs on every node: no node has 8 free, 12 free total.
        for node in cluster.nodes:
            for gpu in node.gpus[:4]:
                gpu.attach(1, 100)
        assert find_relaxed(cluster, 8, vc="a") is not None
        assert len(find_relaxed(cluster, 12, vc="a")) == 12
        assert find_relaxed(cluster, 13, vc="a") is None

    def test_prefers_freest_nodes(self):
        cluster = Cluster({"a": 2})
        for gpu in cluster.nodes[0].gpus[:6]:
            gpu.attach(1, 100)  # node 0: 2 free; node 1: 8 free
        gpus = find_relaxed(cluster, 8, vc="a")
        assert all(g.node_id == 1 for g in gpus)


class TestFragmentationPenalty:
    def test_fragmented_job_runs_slower(self):
        class Fragmenter(Scheduler):
            def schedule(self, now):
                for job in list(self.queue):
                    gpus = find_relaxed(self.engine.cluster, job.gpu_num)
                    if gpus:
                        self.engine.start_job(job, gpus)
                        self.queue.remove(job)

        # Pre-occupy half of each node so a 8-GPU job must fragment.
        cluster = Cluster.homogeneous(2, vc_name="vc1")
        for node in cluster.nodes:
            for gpu in node.gpus[:4]:
                gpu.attach(999, 100)
        job = make_job(1, duration=1000.0, gpu_num=8)
        result = Simulator(cluster, [job], Fragmenter()).run()
        expected = 1000.0 / Simulator.FRAGMENTATION_PENALTY
        assert result.records[0].jct == pytest.approx(expected, rel=1e-6)

    def test_consolidated_job_full_speed(self):
        class Greedy(Scheduler):
            def schedule(self, now):
                for job in list(self.queue):
                    if self.try_place_exclusive(job):
                        self.queue.remove(job)

        cluster = Cluster.homogeneous(2, vc_name="vc1")
        job = make_job(1, duration=1000.0, gpu_num=8)
        result = Simulator(cluster, [job], Greedy()).run()
        assert result.records[0].jct == pytest.approx(1000.0)


class TestStarvationRelief:
    def _setup(self):
        """A 16-GPU job that can never get 2 wholly free nodes."""
        blockers = [make_job(100 + i, duration=50_000.0, gpu_num=1)
                    for i in range(4)]
        big = make_job(1, gpu_num=16, duration=1000.0,
                       submit_time=0.0)
        sim = engine_with_running(blockers, extra=[big])
        # Spread the blockers: one per node (they were consolidated onto
        # one node by the helper; move them).
        return sim, big

    def test_relaxed_placement_after_threshold(self):
        orchestrator = ResourceOrchestrator(starvation_threshold=3600.0)
        blockers = [make_job(100 + i, duration=50_000.0, gpu_num=7)
                    for i in range(4)]
        big = make_job(1, gpu_num=16, duration=1000.0, submit_time=0.0)
        sim = engine_with_running(blockers, extra=[big])
        # 4 nodes each have 1 free GPU... need more free: use 4-GPU blockers
        # instead; recompute: each node half full -> 16 free, fragmented.
        placed = orchestrator.schedule(
            sim, [big], priority_fn=lambda j: 1e12,
            find_mate=lambda j: None, sharing_mode="off", now=0.0)
        assert placed == []  # not starving yet

        placed = orchestrator.schedule(
            sim, [big], priority_fn=lambda j: 1e12,
            find_mate=lambda j: None, sharing_mode="off", now=7200.0)
        # 4 nodes x (8-7)=1 free GPU = 4 free < 16: still unplaceable.
        assert placed == []

    def test_relaxed_placement_succeeds_with_fragmented_capacity(self):
        orchestrator = ResourceOrchestrator(starvation_threshold=3600.0)
        blockers = [make_job(100 + i, duration=50_000.0, gpu_num=4)
                    for i in range(4)]
        big = make_job(1, gpu_num=16, duration=1000.0, submit_time=0.0)
        sim = engine_with_running([], extra=blockers + [big])
        # Force one 4-GPU blocker onto EACH node: 16 free GPUs total, but
        # never two empty nodes.
        for blocker, node in zip(blockers, sim.cluster.nodes):
            sim.start_job(blocker, node.gpus[:4])
        placed = orchestrator.schedule(
            sim, [big], priority_fn=lambda j: 1e12,
            find_mate=lambda j: None, sharing_mode="off", now=0.0)
        assert placed == []  # consolidation impossible, not starving yet
        placed = orchestrator.schedule(
            sim, [big], priority_fn=lambda j: 1e12,
            find_mate=lambda j: None, sharing_mode="off", now=7200.0)
        assert placed == [big]  # starving: fragmented placement accepted
        assert len({g.node_id for g in sim.gpus_of(big)}) > 2

    def test_small_jobs_never_relax(self):
        orchestrator = ResourceOrchestrator(starvation_threshold=3600.0)
        blockers = [make_job(100 + i, duration=50_000.0, gpu_num=7)
                    for i in range(4)]
        small = make_job(1, gpu_num=4, duration=1000.0, submit_time=0.0)
        sim = engine_with_running(blockers, extra=[small])
        # 4 free GPUs exist but scattered 1 per node; a 4-GPU single-node
        # job must wait for consolidation no matter how long it starves.
        placed = orchestrator.schedule(
            sim, [small], priority_fn=lambda j: 0.0,
            find_mate=lambda j: None, sharing_mode="off", now=1e6)
        assert placed == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceOrchestrator(starvation_threshold=0.0)
