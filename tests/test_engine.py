"""Tests for the discrete-event simulation engine."""

import pytest

from repro.cluster import Cluster, find_consolidated
from repro.schedulers.base import Scheduler
from repro.sim import Simulator
from repro.workloads import InterferenceModel, JobStatus

from conftest import make_job


class GreedyScheduler(Scheduler):
    """Places every pending job exclusively, in submit order."""

    name = "greedy"

    def schedule(self, now):
        for job in sorted(self.queue, key=lambda j: j.submit_time):
            if self.try_place_exclusive(job):
                self.queue.remove(job)


class PackPairScheduler(Scheduler):
    """Places the first job exclusively, packs the second onto it."""

    name = "packpair"

    def schedule(self, now):
        for job in list(self.queue):
            running = self.engine.running_jobs()
            if running and running[0].gpu_num == job.gpu_num:
                self.engine.start_job(job, self.engine.gpus_of(running[0]))
            elif not self.try_place_exclusive(job):
                continue
            self.queue.remove(job)


def run_sim(jobs, scheduler=None, nodes=2, interference=None):
    cluster = Cluster.homogeneous(nodes, vc_name="vc1")
    sim = Simulator(cluster, jobs, scheduler or GreedyScheduler(),
                    interference=interference)
    return sim.run()


class TestBasicExecution:
    def test_single_job_runs_to_completion(self):
        result = run_sim([make_job(1, duration=500.0, submit_time=10.0)])
        record = result.records[0]
        assert record.jct == pytest.approx(500.0)
        assert record.queue_delay == pytest.approx(0.0)
        assert result.makespan == pytest.approx(510.0)

    def test_jobs_run_in_parallel_when_capacity_allows(self):
        jobs = [make_job(i, duration=1000.0, gpu_num=4, submit_time=0.0)
                for i in range(1, 4)]
        result = run_sim(jobs)
        assert result.makespan == pytest.approx(1000.0)

    def test_queueing_when_capacity_exhausted(self):
        jobs = [make_job(i, duration=1000.0, gpu_num=8, submit_time=0.0)
                for i in range(1, 4)]
        result = run_sim(jobs)  # 16 GPUs: two run, one waits
        assert result.makespan == pytest.approx(2000.0)
        delays = sorted(r.queue_delay for r in result.records)
        assert delays == pytest.approx([0.0, 0.0, 1000.0])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_sim([make_job(1), make_job(1)])

    def test_deadlock_detected(self):
        # 24-GPU job in a 16-GPU cluster can never start.
        with pytest.raises(RuntimeError, match="deadlock"):
            run_sim([make_job(1, gpu_num=24)])

    def test_all_records_present(self):
        jobs = [make_job(i, duration=100.0 * i, submit_time=5.0 * i)
                for i in range(1, 9)]
        result = run_sim(jobs)
        assert result.n_jobs == 8
        assert {r.job_id for r in result.records} == set(range(1, 9))


class TestPacking:
    def test_packed_pair_slows_down(self):
        inter = InterferenceModel(pair_noise_std=0.0)
        jobs = [
            make_job(1, duration=1000.0, gpu_util=80.0, mem_util=50.0),
            make_job(2, duration=1000.0, gpu_util=80.0, mem_util=50.0),
        ]
        result = run_sim(jobs, PackPairScheduler(), interference=inter)
        # Both packed from t=0: speed < 1 so both finish late.
        for record in result.records:
            assert record.jct > 1050.0

    def test_mate_speeds_up_after_partner_finishes(self):
        inter = InterferenceModel(pair_noise_std=0.0)
        jobs = [
            make_job(1, duration=2000.0, gpu_util=80.0, mem_util=50.0),
            make_job(2, duration=200.0, gpu_util=80.0, mem_util=50.0),
        ]
        result = run_sim(jobs, PackPairScheduler(), interference=inter)
        long_record = next(r for r in result.records if r.job_id == 1)
        short_record = next(r for r in result.records if r.job_id == 2)
        # The long job ran packed only briefly, so finishes close to 2000s,
        # but strictly later; it must not be double-penalized.
        assert 2000.0 < long_record.jct < 2150.0
        assert short_record.jct > 200.0

    def test_light_pair_packs_nearly_free(self):
        inter = InterferenceModel(pair_noise_std=0.0)
        jobs = [
            make_job(1, duration=1000.0, gpu_util=10.0, mem_util=5.0),
            make_job(2, duration=1000.0, gpu_util=10.0, mem_util=5.0),
        ]
        result = run_sim(jobs, PackPairScheduler(), interference=inter)
        for record in result.records:
            assert record.jct == pytest.approx(1000.0, rel=0.02)

    def test_shared_utilization_tracked(self):
        inter = InterferenceModel(pair_noise_std=0.0)
        jobs = [
            make_job(1, duration=1000.0, gpu_util=10.0),
            make_job(2, duration=1000.0, gpu_util=10.0),
        ]
        result = run_sim(jobs, PackPairScheduler(), interference=inter)
        assert result.utilization.gpu_shared > 0.0


class TestPreemption:
    def test_stop_and_resume_preserves_progress(self):
        class PreemptOnce(Scheduler):
            tick_interval = 100.0

            def __init__(self):
                super().__init__()
                self.did_preempt = False

            def schedule(self, now):
                if (not self.did_preempt and now >= 500.0
                        and self.engine.running_jobs()):
                    job = self.engine.running_jobs()[0]
                    self.engine.stop_job(job, preempted=True)
                    self.queue.append(job)
                    self.did_preempt = True
                for job in list(self.queue):
                    if self.try_place_exclusive(job):
                        self.queue.remove(job)

        result = run_sim([make_job(1, duration=1000.0)], PreemptOnce())
        record = result.records[0]
        assert record.preemptions == 1
        # Preempted at ~500, resumed immediately: tiny added wall time.
        assert record.jct == pytest.approx(1000.0, abs=120.0)

    def test_resume_overhead_counts_as_queue_not_service(self):
        class OverheadScheduler(Scheduler):
            def schedule(self, now):
                for job in list(self.queue):
                    gpus = find_consolidated(self.engine.cluster, job.gpu_num)
                    if gpus:
                        self.engine.start_job(job, gpus, overhead=62.0)
                        self.queue.remove(job)

        result = run_sim([make_job(1, duration=1000.0)], OverheadScheduler())
        record = result.records[0]
        assert record.jct == pytest.approx(1062.0)
        assert record.queue_delay == pytest.approx(62.0)


class TestTimeLimit:
    def test_time_limit_fires_for_long_job(self):
        events = []

        class LimitScheduler(Scheduler):
            def schedule(self, now):
                for job in list(self.queue):
                    gpus = find_consolidated(self.engine.cluster, job.gpu_num)
                    if gpus:
                        self.engine.start_job(job, gpus, time_limit=100.0)
                        self.queue.remove(job)

            def on_time_limit(self, job, now):
                events.append((job.job_id, now))
                self.engine.stop_job(job)
                job.progress = 0.0
                gpus = find_consolidated(self.engine.cluster, job.gpu_num)
                self.engine.start_job(job, gpus)  # restart without limit

        result = run_sim([make_job(1, duration=500.0)], LimitScheduler())
        assert events == [(1, pytest.approx(100.0))]
        # Restarted from scratch after 100s: finishes at 600s.
        assert result.records[0].jct == pytest.approx(600.0)

    def test_short_job_finishes_before_limit(self):
        fired = []

        class LimitScheduler(Scheduler):
            def schedule(self, now):
                for job in list(self.queue):
                    gpus = find_consolidated(self.engine.cluster, job.gpu_num)
                    if gpus:
                        self.engine.start_job(job, gpus, time_limit=100.0,
                                              profiling=True)
                        self.queue.remove(job)

            def on_time_limit(self, job, now):
                fired.append(job.job_id)

        result = run_sim([make_job(1, duration=50.0)], LimitScheduler())
        assert fired == []
        assert result.records[0].finished_in_profiler
        assert result.records[0].jct == pytest.approx(50.0)


class TestEngineGuards:
    def test_double_start_rejected(self):
        class BadScheduler(Scheduler):
            def schedule(self, now):
                for job in list(self.queue):
                    gpus = find_consolidated(self.engine.cluster, job.gpu_num)
                    self.engine.start_job(job, gpus)
                    self.engine.start_job(job, gpus)  # boom

        with pytest.raises(RuntimeError, match="already running"):
            run_sim([make_job(1)], BadScheduler())

    def test_wrong_gpu_count_rejected(self):
        class BadScheduler(Scheduler):
            def schedule(self, now):
                for job in list(self.queue):
                    gpus = find_consolidated(self.engine.cluster, 2)
                    self.engine.start_job(job, gpus)

        with pytest.raises(RuntimeError, match="needs 1 GPUs"):
            run_sim([make_job(1, gpu_num=1)], BadScheduler())

    def test_stop_non_running_rejected(self):
        class BadScheduler(Scheduler):
            def schedule(self, now):
                for job in list(self.queue):
                    self.engine.stop_job(job)

        with pytest.raises(RuntimeError, match="not running"):
            run_sim([make_job(1)], BadScheduler())


class TestEventOrdering:
    """Same-timestamp events must dispatch in creation order (seq ties)."""

    def test_seq_breaks_timestamp_ties(self):
        from repro.sim.events import EventKind, EventQueue

        queue = EventQueue()
        kinds = [EventKind.FINISH, EventKind.SUBMIT, EventKind.TICK,
                 EventKind.NODE_FAIL]
        for kind in kinds:
            queue.push(100.0, kind)
        popped = [queue.pop() for _ in range(len(kinds))]
        assert [e.kind for e in popped] == kinds
        assert [e.seq for e in popped] == sorted(e.seq for e in popped)

    def test_seq_monotone_across_timestamps(self):
        from repro.sim.events import EventKind, EventQueue

        queue = EventQueue()
        late = queue.push(200.0, EventKind.FINISH)
        early = queue.push(100.0, EventKind.SUBMIT)
        assert early.seq > late.seq  # creation order, not pop order
        assert queue.pop() is early and queue.pop() is late

    def test_comparison_never_touches_payload(self):
        # kind/job_id/payload are compare=False: heap ordering must not
        # fall through to unorderable fields on (time, seq) construction.
        from repro.sim.events import Event, EventKind

        a = Event(time=5.0, seq=1, kind=EventKind.TICK, payload=object())
        b = Event(time=5.0, seq=2, kind=EventKind.SUBMIT, payload={"x": 1})
        assert a < b and not b < a
