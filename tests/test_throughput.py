"""Tests for the Throughput Predict Model (§3.5.2)."""

import numpy as np
import pytest

from repro.core.throughput import ThroughputPredictModel
from repro.models.metrics import mae


def diurnal_series(days=14, amplitude=40.0, base=50.0, noise=3.0, seed=0):
    rng = np.random.default_rng(seed)
    hours = np.arange(days * 24)
    hod = hours % 24
    signal = base + amplitude * np.exp(-((hod - 14.0) / 4.0) ** 2)
    return np.maximum(0.0, signal + rng.normal(0, noise, len(hours)))


@pytest.fixture(scope="module")
def fitted():
    return ThroughputPredictModel(random_state=0).fit_series(diurnal_series())


class TestFitting:
    def test_requires_a_day_of_history(self):
        with pytest.raises(ValueError):
            ThroughputPredictModel().fit_series(np.ones(10))

    def test_fit_events(self):
        rng = np.random.default_rng(1)
        times = np.sort(rng.uniform(0, 3 * 86_400, 2000))
        model = ThroughputPredictModel().fit_events(times)
        assert model.train_median > 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ThroughputPredictModel().forecast_next(np.ones(48), 0.0)


class TestForecasting:
    def test_one_step_ahead_accuracy(self, fitted):
        series = diurnal_series(seed=9)
        preds = fitted.predict_series(series)
        # Skip the first day (warm-up of lag features).
        err = mae(series[24:], preds[24:])
        assert err < 10.0  # vs amplitude 40

    def test_beats_naive_mean(self, fitted):
        series = diurnal_series(seed=9)
        preds = fitted.predict_series(series)
        naive = np.full_like(series, series.mean())
        assert mae(series[24:], preds[24:]) < mae(series[24:], naive[24:])

    def test_forecast_next_tracks_diurnal_peak(self, fitted):
        series = diurnal_series(days=5)
        # Forecast 14:00 on day 3 (peak) vs 03:00 (trough).
        peak_t = (3 * 24 + 14) * 3600.0
        trough_t = (3 * 24 + 3) * 3600.0
        peak = fitted.forecast_next(series[: 3 * 24 + 14], peak_t)
        trough = fitted.forecast_next(series[: 3 * 24 + 3], trough_t)
        assert peak > trough + 15.0

    def test_forecast_non_negative(self, fitted):
        assert fitted.forecast_next(np.zeros(48), 48 * 3600.0) >= 0.0

    def test_load_level(self, fitted):
        assert fitted.load_level(fitted.train_median) == pytest.approx(1.0)
        assert fitted.load_level(0.0) == 0.0


class TestInterpretation:
    def test_global_explanation_has_hour(self, fitted):
        explanation = fitted.explain_global()
        assert "hour" in explanation.feature_names
        top = [name for name, _ in explanation.top_features(6)]
        # Figure 7a: hour and recent-history features dominate.
        assert any(n in top for n in
                   ("hour", "shift_1h", "soft_1h", "roll_mean_1h"))

    def test_hour_shape_is_diurnal(self, fitted):
        """Figure 7b: the hour shape peaks in the afternoon."""
        edges, values = fitted.hour_shape()
        bins = np.concatenate([[0], edges, [23]])
        # Find scores near hour 14 vs hour 3.
        idx_peak = np.digitize(14.0, edges)
        idx_trough = np.digitize(3.0, edges)
        assert values[idx_peak] > values[idx_trough]
