"""Tests for the run-report generator and the report/explain CLI."""

import json
import os
import re

import pytest

from repro.cli import main
from repro.core import LucidScheduler
from repro.obs import (
    DecisionAudit,
    REPORT_SCHEMA,
    SeriesCollector,
    SimProfiler,
    build_report,
    load_report,
    render_html,
    validate_report,
    write_report,
)
from repro.sim import Simulator
from repro.traces import TraceGenerator, TraceSpec

SPEC = TraceSpec(name="tiny", n_nodes=4, n_vcs=2, n_jobs=40,
                 full_n_jobs=40, mean_duration=1500.0, span_days=0.25,
                 n_users=6, seed=21)


def _observed_run(scheduler_name="lucid"):
    """One fully observed run: profiler + series + attribution audit."""
    from repro import make_scheduler

    generator = TraceGenerator(SPEC)
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    if scheduler_name == "lucid":
        audit = DecisionAudit(attribution=True)
        scheduler = LucidScheduler(history, audit=audit)
    else:
        audit = None
        scheduler = make_scheduler(scheduler_name, history)
    profiler = SimProfiler()
    series = SeriesCollector(interval=600.0)
    result = Simulator(cluster, jobs, scheduler, profile=profiler,
                       series=series).run()
    return result, profiler, series, audit


@pytest.fixture(scope="module")
def lucid_report():
    result, profiler, series, audit = _observed_run()
    document = build_report(result, scheduler="lucid", trace="tiny",
                            jobs=SPEC.n_jobs, seed=SPEC.seed,
                            profiler=profiler, series=series, audit=audit,
                            created="2026-01-01T00:00:00")
    return document, audit


class TestBuildReport:
    def test_document_validates(self, lucid_report):
        document, _ = lucid_report
        validate_report(document)
        assert document["schema"] == REPORT_SCHEMA
        assert document["run"] == {"scheduler": "lucid", "trace": "tiny",
                                   "jobs": SPEC.n_jobs,
                                   "seed": SPEC.seed}
        assert document["summary"]["n_jobs"] == float(SPEC.n_jobs)

    def test_attribution_coverage_criterion(self, lucid_report):
        """>= 95% of audited main-cluster placements carry an
        attribution, and every recorded attribution is additive."""
        document, audit = lucid_report
        coverage = document["attributions"]["coverage"]
        assert coverage["decisions"] > 0
        assert coverage["rate"] >= 0.95
        assert document["attributions"]["additive"] == \
            coverage["with_attribution"]
        decisions, with_attr = audit.attribution_coverage()
        assert (coverage["decisions"], coverage["with_attribution"]) == \
            (decisions, with_attr)

    def test_top_features_are_mean_magnitudes(self, lucid_report):
        document, _ = lucid_report
        top = document["attributions"]["top_features"]
        assert top, "expected at least one attributed feature"
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)
        assert all(score >= 0 for score in scores)

    def test_series_and_profile_sections(self, lucid_report):
        document, _ = lucid_report
        assert document["series"]["samples"], "series not collected"
        assert document["profile"]["events_processed"] > 0
        assert document["audit"]["decisions"] > 0

    def test_optional_sections_default_none(self):
        result, _, _, _ = _observed_run("fifo")
        document = build_report(result, scheduler="fifo", trace="tiny",
                                jobs=SPEC.n_jobs, seed=SPEC.seed)
        validate_report(document)
        assert document["series"] is None
        assert document["profile"] is None
        assert document["attributions"] is None
        assert document["audit"] is None
        assert document["faults"] is None
        assert document["bench_diff"] is None


class TestValidateReport:
    def test_wrong_schema_rejected(self, lucid_report):
        document = dict(lucid_report[0], schema="repro-bench/v1")
        with pytest.raises(ValueError, match="unsupported report schema"):
            validate_report(document)

    def test_missing_key_rejected(self, lucid_report):
        document = dict(lucid_report[0])
        del document["summary"]
        with pytest.raises(ValueError, match="misses keys"):
            validate_report(document)

    def test_bad_run_section_rejected(self, lucid_report):
        document = dict(lucid_report[0], run={"scheduler": "lucid"})
        with pytest.raises(ValueError, match="'run' section misses"):
            validate_report(document)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            validate_report(["not", "a", "report"])


class TestRenderHtml:
    def test_self_contained_no_external_assets(self, lucid_report):
        page = render_html(lucid_report[0])
        # Only the SVG xmlns declaration may mention a URL; no fetched
        # scripts, stylesheets, images or fonts.
        refs = re.findall(r'(?:src|href)\s*=\s*["\'][^"\']+', page)
        assert refs == []
        assert "<script" not in page
        urls = re.findall(r'https?://[^"\s<]+', page)
        assert all("www.w3.org" in u for u in urls)

    def test_sections_present(self, lucid_report):
        page = render_html(lucid_report[0])
        for heading in ("Summary", "Cluster time series",
                        "Interpretability", "Decision audit",
                        "Simulator profile", "Faults"):
            assert f"<h2>{heading}</h2>" in page
        assert "<svg" in page
        assert "coverage:" in page

    def test_missing_sections_render_placeholders(self):
        result, _, _, _ = _observed_run("fifo")
        document = build_report(result, scheduler="fifo", trace="tiny",
                                jobs=SPEC.n_jobs, seed=SPEC.seed)
        page = render_html(document)
        assert "no time series collected" in page
        assert "attribution disabled" in page
        assert "profiler not attached" in page

    def test_bench_diff_regression_rendered(self, lucid_report):
        document = dict(lucid_report[0])
        document["bench_diff"] = {
            "threshold": 0.25,
            "rows": [{"name": "lucid/tiny@40j-s21", "baseline_eps": 1000.0,
                      "candidate_eps": 100.0, "ratio": 0.1,
                      "note": "REGRESSION"}],
            "regressions": ["lucid/tiny@40j-s21: events/sec fell 90.0%"],
        }
        page = render_html(document)
        assert "REGRESSION" in page
        assert "events/sec fell" in page

    def test_invalid_document_rejected(self):
        with pytest.raises(ValueError):
            render_html({"schema": "nope"})


class TestWriteReport:
    def test_round_trip_and_atomicity(self, lucid_report, tmp_path):
        out = tmp_path / "nested" / "out"
        os.makedirs(out)
        html_path, json_path = write_report(lucid_report[0], str(out))
        assert os.path.exists(html_path) and os.path.exists(json_path)
        assert not os.path.exists(html_path + ".tmp")
        assert not os.path.exists(json_path + ".tmp")
        reloaded = load_report(json_path)
        assert reloaded == json.loads(
            json.dumps(lucid_report[0], sort_keys=True))


class TestZeroOverheadBitIdentity:
    """Attribution and reporting are observers: scheduling is
    bit-identical with the whole stack on or off."""

    @pytest.mark.parametrize("name", ["fifo", "tiresias", "lucid"])
    def test_observed_run_matches_plain_run(self, name):
        plain = self._records(name, observed=False)
        observed = self._records(name, observed=True)
        assert plain == observed

    @staticmethod
    def _records(name, observed):
        from repro import make_scheduler

        generator = TraceGenerator(SPEC)
        cluster = generator.build_cluster()
        history = generator.generate_history()
        jobs = generator.generate()
        if name == "lucid" and observed:
            scheduler = LucidScheduler(
                history, audit=DecisionAudit(attribution=True))
        else:
            scheduler = make_scheduler(name, history)
        kwargs = {}
        if observed:
            kwargs = {"profile": SimProfiler(),
                      "series": SeriesCollector(interval=600.0)}
        result = Simulator(cluster, jobs, scheduler, **kwargs).run()
        return (tuple(sorted(result.summary().items())),
                tuple((r.job_id, r.jct, r.queue_delay, r.preemptions)
                      for r in result.records))


class TestReportCLI:
    def test_report_command_writes_both_files(self, tmp_path, capsys):
        out = tmp_path / "report-out"
        code = main(["report", "--trace", "venus", "--jobs", "60",
                     "--seed", "7", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "attribution coverage:" in captured
        document = load_report(str(out / "report.json"))
        assert document["run"]["scheduler"] == "lucid"
        assert document["attributions"]["coverage"]["rate"] >= 0.95
        page = (out / "report.html").read_text()
        assert page.startswith("<!DOCTYPE html>")

    def test_report_against_missing_baseline_exits_2(self, tmp_path,
                                                     capsys):
        code = main(["report", "--trace", "venus", "--jobs", "60",
                     "--seed", "7", "--out", str(tmp_path / "o"),
                     "--against", str(tmp_path / "nope.json")])
        assert code == 2

    def test_report_against_baseline_embeds_diff(self, tmp_path, capsys):
        from repro.bench import BenchScenario, run_bench, write_bench

        baseline = tmp_path / "baseline.json"
        write_bench(run_bench([BenchScenario("fifo", "venus", 60, 7)],
                              quick=True), str(baseline))
        out = tmp_path / "report-out"
        code = main(["report", "--trace", "venus", "--jobs", "60",
                     "--seed", "7", "--scheduler", "fifo",
                     "--out", str(out), "--against", str(baseline)])
        assert code == 0
        document = load_report(str(out / "report.json"))
        rows = document["bench_diff"]["rows"]
        assert len(rows) == 1
        assert rows[0]["name"] == "fifo/venus@60j-s7"
        assert rows[0]["baseline_eps"] is not None


class TestExplainCLI:
    def test_unknown_job_exits_1(self, capsys):
        code = main(["explain", "424242", "--trace", "venus",
                     "--jobs", "60", "--seed", "7"])
        assert code == 1
        assert "no recorded decisions" in capsys.readouterr().err

    def test_json_format_lists_decisions(self, capsys):
        code = main(["explain", "201", "--trace", "venus", "--jobs", "60",
                     "--seed", "7", "--format", "json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["job_id"] == 201
        assert document["decisions"]
        assert all(d["job_id"] == 201 for d in document["decisions"])

    def test_what_if_probe(self, capsys):
        code = main(["explain", "201", "--trace", "venus", "--jobs", "60",
                     "--seed", "7", "--what-if", "gpu_num=8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "with gpu_num=8" in out

    def test_bad_what_if_spec_exits_2(self, capsys):
        code = main(["explain", "201", "--trace", "venus", "--jobs", "60",
                     "--seed", "7", "--what-if", "gpu_num=lots"])
        assert code == 2

    def test_unknown_feature_exits_2(self, capsys):
        code = main(["explain", "201", "--trace", "venus", "--jobs", "60",
                     "--seed", "7", "--what-if", "flux_capacitor=1"])
        assert code == 2
        assert "counterfactual failed" in capsys.readouterr().err

    def test_audit_file_source(self, tmp_path, capsys):
        result, _, _, audit = _observed_run()
        path = tmp_path / "deep" / "audit.jsonl"
        audit.to_jsonl(str(path))
        job_id = audit.records[0].job_id
        code = main(["explain", str(job_id), "--audit", str(path)])
        assert code == 0
        assert f"job {job_id}" in capsys.readouterr().out

    def test_what_if_rejected_with_audit_file(self, tmp_path, capsys):
        _, _, _, audit = _observed_run()
        path = tmp_path / "audit.jsonl"
        audit.to_jsonl(str(path))
        code = main(["explain", "1", "--audit", str(path),
                     "--what-if", "gpu_num=8"])
        assert code == 2

    def test_non_audited_scheduler_exits_2(self, capsys):
        code = main(["explain", "201", "--trace", "venus", "--jobs", "60",
                     "--seed", "7", "--scheduler", "fifo"])
        assert code == 2
        assert "no decision audit" in capsys.readouterr().err
