"""Real-signal lifecycle tests: SIGTERM drains, SIGKILL recovers.

These boot the daemon as an actual subprocess via ``python -m repro
serve`` — the same entry CI and the chaos harness use — and assert the
two halves of the lifecycle contract:

* **SIGTERM** is a graceful drain: the process exits 0 on its own, the
  store ends clean, and a final snapshot was flushed.
* **SIGKILL** cannot corrupt: the store ends dirty, and a restarted
  daemon recovers and finishes the workload with per-tick digests that
  match a never-crashed control (the chaos invariant, 2-point edition).

Every ``wait`` carries a timeout so a wedged daemon fails the test
instead of hanging the suite.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import ServeConfig
from repro.serve.chaos import (
    chaos_run,
    commit_digests,
    final_state,
    stage_trace_specs,
)
from repro.serve.store import Store

#: venus@30 under fifo: a handful of service ticks, ~1s wall.
CONFIG = ServeConfig(trace="venus", scheduler="fifo", jobs=30, seed=7)

SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def spawn(state_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state_dir),
            "--trace", CONFIG.trace, "--scheduler", CONFIG.scheduler,
            "--jobs", str(CONFIG.jobs), "--seed", str(CONFIG.seed),
            "--poll-interval", "0.01", "--no-fsync", *extra]
    return subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)


def wait_for_ticks(state_dir, minimum=1, budget=30.0):
    """Poll until the subprocess daemon has committed ``minimum`` ticks."""
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        if len(commit_digests(str(state_dir))) >= minimum:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"daemon committed < {minimum} ticks within {budget:.0f}s")


class TestSigterm:
    def test_sigterm_drains_and_flushes(self, tmp_path):
        stage_trace_specs(str(tmp_path), CONFIG)
        proc = spawn(tmp_path)
        try:
            wait_for_ticks(tmp_path, minimum=1)
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert code == 0
        out = proc.stdout.read().decode()
        assert "drained cleanly" in out
        with Store(str(tmp_path)) as store:
            assert store.is_clean()
            # close() snapshots before marking clean: the final state is
            # durable, not just the clean flag.
            assert store.snapshot_ticks()[-1] >= 1
        state = final_state(str(tmp_path))
        assert state["tick"] == max(commit_digests(str(tmp_path)))

    def test_drained_store_restarts_clean(self, tmp_path):
        stage_trace_specs(str(tmp_path), CONFIG)
        proc = spawn(tmp_path, "--exit-when-idle")
        assert proc.wait(timeout=60) == 0
        proc.stdout.close()
        # Second boot on the drained store: clean restart, zero replay.
        proc = spawn(tmp_path, "--exit-when-idle")
        assert proc.wait(timeout=60) == 0
        out = proc.stdout.read().decode()
        assert "clean restart" in out
        assert "0 tick(s) replayed" in out


class TestSigkill:
    def test_sigkill_leaves_a_recoverable_store(self, tmp_path):
        control = tmp_path / "control"
        stage_trace_specs(str(control), CONFIG)
        proc = spawn(control, "--exit-when-idle")
        assert proc.wait(timeout=60) == 0
        proc.stdout.close()
        control_digests = commit_digests(str(control))
        control_final = final_state(str(control))

        crashed = tmp_path / "crashed"
        stage_trace_specs(str(crashed), CONFIG)
        proc = spawn(crashed)
        try:
            wait_for_ticks(crashed, minimum=1)
            proc.send_signal(signal.SIGKILL)
            code = proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        proc.stdout.close()
        assert code == -signal.SIGKILL
        with Store(str(crashed)) as store:
            assert not store.is_clean()  # unclean shutdown is detected

        # Restart: recovery + the rest of the workload, bit-identically.
        proc = spawn(crashed, "--exit-when-idle")
        assert proc.wait(timeout=60) == 0
        proc.stdout.close()
        assert commit_digests(str(crashed)) == control_digests
        recovered = final_state(str(crashed))
        assert recovered["digest"] == control_final["digest"]
        assert recovered["clean"]


@pytest.mark.slow
class TestChaosSweep:
    def test_seeded_sweep_recovers_bit_identically(self, tmp_path):
        """A miniature of the CI chaos gate (2 kill points)."""
        result = chaos_run(str(tmp_path), CONFIG, points=2, chaos_seed=3,
                           timeout=120.0)
        assert result.ok, result.describe()
        assert result.control_ticks >= 1
        for trial in result.trials:
            assert trial.ticks_checked == result.control_ticks
