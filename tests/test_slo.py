"""Tests for the SLO/deadline extension (paper §6)."""

import numpy as np
import pytest

from repro import Simulator, TraceGenerator
from repro.core import LucidScheduler
from repro.core.slo_lucid import SLOLucidScheduler
from repro.traces import TraceSpec
from repro.traces.slo import assign_deadlines, slo_report

from conftest import make_job

SPEC = TraceSpec(
    name="slo", n_nodes=6, n_vcs=2, n_jobs=400, full_n_jobs=400,
    mean_duration=2200.0, span_days=0.4, n_users=16, seed=911,
)


def run(scheduler_cls, fraction=0.3, slack=(1.3, 2.5)):
    generator = TraceGenerator(SPEC)
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    assign_deadlines(jobs, fraction=fraction, slack_range=slack, seed=1)
    scheduler = scheduler_cls(history)
    return Simulator(cluster, jobs, scheduler).run()


class TestAssignDeadlines:
    def test_fraction_and_slack(self):
        jobs = [make_job(i, duration=100.0, submit_time=float(i))
                for i in range(1, 401)]
        count = assign_deadlines(jobs, fraction=0.5, slack_range=(2.0, 3.0),
                                 seed=7)
        assert 140 < count < 260  # ~50%
        for job in jobs:
            if job.deadline is not None:
                slack = (job.deadline - job.submit_time) / job.duration
                assert 2.0 <= slack <= 3.0

    def test_zero_fraction(self):
        jobs = [make_job(1)]
        assert assign_deadlines(jobs, fraction=0.0) == 0
        assert jobs[0].deadline is None

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_deadlines([], fraction=1.5)
        with pytest.raises(ValueError):
            assign_deadlines([], slack_range=(0.5, 2.0))

    def test_deterministic(self):
        a = [make_job(i, submit_time=float(i)) for i in range(1, 51)]
        b = [make_job(i, submit_time=float(i)) for i in range(1, 51)]
        assign_deadlines(a, seed=3)
        assign_deadlines(b, seed=3)
        assert [j.deadline for j in a] == [j.deadline for j in b]


class TestSLOReport:
    def test_report_fields(self):
        result = run(LucidScheduler)
        report = slo_report(result)
        assert report["n_slo_jobs"] > 0
        assert 0.0 <= report["attainment"] <= 1.0
        assert report["best_effort_jct_hrs"] > 0.0

    def test_met_deadline_property(self):
        job = make_job(1, duration=100.0, submit_time=0.0)
        job.deadline = 150.0
        job.finish_time = 120.0
        from repro.workloads.job import JobRecord
        record = JobRecord.from_job(job)
        assert record.met_deadline is True
        job2 = make_job(2, duration=100.0, submit_time=0.0)
        job2.deadline = 110.0
        job2.finish_time = 120.0
        assert JobRecord.from_job(job2).met_deadline is False

    def test_best_effort_jobs_excluded(self):
        job = make_job(1, duration=100.0)
        job.finish_time = 100.0
        from repro.workloads.job import JobRecord
        assert JobRecord.from_job(job).met_deadline is None


class TestSLOLucid:
    def test_runs_and_reports(self):
        result = run(SLOLucidScheduler)
        assert result.n_jobs == SPEC.n_jobs
        report = slo_report(result)
        assert report["attainment"] > 0.5

    def test_improves_attainment_over_plain_lucid(self):
        slo = slo_report(run(SLOLucidScheduler))
        plain = slo_report(run(LucidScheduler))
        assert slo["attainment"] >= plain["attainment"]

    def test_best_effort_cost_is_bounded(self):
        slo = slo_report(run(SLOLucidScheduler))
        plain = slo_report(run(LucidScheduler))
        # SLO prioritization may delay best-effort jobs, but not wreck them.
        assert slo["best_effort_jct_hrs"] <= \
            plain["best_effort_jct_hrs"] * 1.5 + 0.1

    def test_urgent_jobs_skip_packing(self):
        generator = TraceGenerator(SPEC)
        history = generator.generate_history()
        scheduler = SLOLucidScheduler(history, slack_guard=0.5)

        class _Engine:
            now = 0.0

        scheduler.engine = _Engine()
        urgent = make_job(1, duration=1000.0, submit_time=0.0)
        urgent.estimated_duration = 1000.0
        urgent.deadline = 1100.0  # slack 100 < guard 500
        assert scheduler._is_urgent(urgent)
        assert scheduler._find_mate(urgent) is None

    def test_relaxed_job_keeps_lucid_priority(self):
        generator = TraceGenerator(SPEC)
        history = generator.generate_history()
        scheduler = SLOLucidScheduler(history, slack_guard=0.5)

        class _Engine:
            now = 0.0

        scheduler.engine = _Engine()
        scheduler.estimator = object()  # estimator-enabled priority path
        relaxed = make_job(1, duration=1000.0, submit_time=0.0, gpu_num=2)
        relaxed.estimated_duration = 1000.0
        relaxed.deadline = 10_000.0  # plenty of slack
        assert not scheduler._is_urgent(relaxed)
        assert scheduler._priority(relaxed) == pytest.approx(2 * 1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOLucidScheduler([make_job(1)], slack_guard=-1.0)
