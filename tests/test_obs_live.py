"""Unit tests for the live telemetry plane (:mod:`repro.obs.live`).

Covers the registry/exposition layer in isolation: bucketed
histograms, labeled families, Prometheus text escaping, the JSON
render, profiler publication, dashboard self-containment, and the
structured-logging context plumbing.  The end-to-end daemon scrape
lives in :mod:`tests.test_serve_telemetry`.
"""

from __future__ import annotations

import io
import json
import logging
import math

import pytest

from repro.checks.lint import STATE_SINK_PACKAGES, _DeterminismVisitor
from repro.obs.live import (
    CONTENT_TYPE_PROMETHEUS,
    DEFAULT_LATENCY_BUCKETS,
    GAUGE_HISTORY,
    LiveRegistry,
    publish_profiler,
    render_dashboard,
    render_json_text,
)
from repro.obs.logutil import (
    JsonFormatter,
    configure_logging,
    current_context,
    log_context,
)
from repro.obs.metrics import BucketHistogram, Gauge
from repro.obs.prof import SimProfiler


# ----------------------------------------------------------------------
# BucketHistogram
# ----------------------------------------------------------------------
class TestBucketHistogram:
    def test_cumulative_is_monotone_and_ends_at_count(self):
        hist = BucketHistogram("h", (0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        rows = hist.cumulative()
        assert [bound for bound, _ in rows] == [0.1, 1.0, 10.0, math.inf]
        counts = [cum for _, cum in rows]
        assert counts == sorted(counts)
        assert counts[-1] == hist.count == 5
        assert hist.total == pytest.approx(56.05)

    def test_boundary_observation_lands_in_le_bucket(self):
        hist = BucketHistogram("h", (1.0, 2.0))
        hist.observe(1.0)  # le="1.0" is inclusive
        assert hist.cumulative()[0][1] == 1

    def test_quantile_returns_bucket_upper_bound(self):
        hist = BucketHistogram("h", (0.1, 1.0, 10.0))
        for _ in range(99):
            hist.observe(0.05)
        hist.observe(5.0)
        assert hist.quantile(0.50) == 0.1
        assert hist.quantile(1.00) == 10.0
        # Rank in +Inf clamps to the largest finite bound.
        hist.observe(100.0)
        assert hist.quantile(1.00) == 10.0

    def test_empty_histogram_summary(self):
        hist = BucketHistogram("h", (1.0,))
        assert hist.summary() == {
            "count": 0.0, "sum": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_rejects_empty_or_unsorted_bounds(self):
        with pytest.raises(ValueError, match="at least one bound"):
            BucketHistogram("h", ())
        with pytest.raises(ValueError, match="sorted"):
            BucketHistogram("h", (2.0, 1.0))


class TestGaugeHistoryBound:
    def test_max_samples_keeps_newest(self):
        gauge = Gauge("g", max_samples=4)
        for tick in range(10):
            gauge.set(float(tick), time=float(tick))
        assert len(gauge.samples) == 4
        assert gauge.samples[0] == (6.0, 6.0)
        assert gauge.samples[-1] == (9.0, 9.0)

    def test_unbounded_by_default(self):
        gauge = Gauge("g")
        for tick in range(GAUGE_HISTORY + 10):
            gauge.set(float(tick), time=float(tick))
        assert len(gauge.samples) == GAUGE_HISTORY + 10


# ----------------------------------------------------------------------
# LiveRegistry
# ----------------------------------------------------------------------
class TestLiveRegistry:
    def test_get_or_create_returns_same_child(self):
        reg = LiveRegistry()
        first = reg.counter("ticks_total", "ticks")
        second = reg.counter("ticks_total")
        assert first is second
        labeled = reg.counter("ticks_total_by", labels={"mode": "a"})
        assert labeled is not first
        assert reg.counter("ticks_total_by",
                           labels={"mode": "a"}) is labeled

    def test_kind_conflict_raises(self):
        reg = LiveRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("x_total")

    def test_labelname_conflict_raises(self):
        reg = LiveRegistry()
        reg.counter("y_total", labels={"a": "1"})
        with pytest.raises(ValueError, match="has labels"):
            reg.counter("y_total", labels={"b": "1"})

    def test_invalid_names_rejected(self):
        reg = LiveRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter("ok_total", labels={"bad-label": "1"})

    def test_namespace_prefix(self):
        reg = LiveRegistry(namespace="svc")
        reg.counter("ticks_total").inc()
        assert "svc_ticks_total 1" in reg.render_prometheus()


class TestPrometheusRender:
    def test_help_type_and_value_lines(self):
        reg = LiveRegistry()
        reg.counter("ticks_total", "Service ticks").inc(3)
        reg.gauge("jobs", "Jobs in flight").set(7.0)
        text = reg.render_prometheus()
        assert "# HELP repro_ticks_total Service ticks\n" in text
        assert "# TYPE repro_ticks_total counter\n" in text
        assert "repro_ticks_total 3\n" in text
        assert "# TYPE repro_jobs gauge\n" in text
        assert "repro_jobs 7\n" in text
        assert text.endswith("\n")

    def test_label_value_escaping(self):
        reg = LiveRegistry()
        reg.counter("odd_total", "odd",
                    labels={"path": 'a\\b"c\nd'}).inc()
        text = reg.render_prometheus()
        assert 'path="a\\\\b\\"c\\nd"' in text

    def test_help_escaping(self):
        reg = LiveRegistry()
        reg.counter("esc_total", "line\nbreak \\ slash").inc()
        assert ("# HELP repro_esc_total line\\nbreak \\\\ slash"
                in reg.render_prometheus())

    def test_histogram_exposition_shape(self):
        reg = LiveRegistry()
        hist = reg.histogram("lat_seconds", "latency",
                             buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = reg.render_prometheus()
        assert 'repro_lat_seconds_bucket{le="0.1"} 1\n' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2\n' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3\n' in text
        assert "repro_lat_seconds_sum 5.55\n" in text
        assert "repro_lat_seconds_count 3\n" in text

    def test_labeled_histogram_keeps_le_last(self):
        reg = LiveRegistry()
        reg.histogram("h_seconds", labels={"route": "/x"},
                      buckets=(1.0,)).observe(0.5)
        text = reg.render_prometheus()
        assert ('repro_h_seconds_bucket{route="/x",le="1"} 1'
                in text)

    def test_unset_gauge_renders_zero(self):
        reg = LiveRegistry()
        reg.gauge("maybe")
        assert "repro_maybe 0\n" in reg.render_prometheus()

    def test_empty_registry_renders_empty(self):
        assert LiveRegistry().render_prometheus() == ""

    def test_content_type_constant(self):
        assert CONTENT_TYPE_PROMETHEUS.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE_PROMETHEUS


class TestJsonRender:
    def test_families_shape(self):
        reg = LiveRegistry()
        reg.counter("c_total", "count").inc(2)
        reg.gauge("g", "gauge").set(1.0, time=0.0)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        doc = reg.render_json()
        by_name = {fam["name"]: fam for fam in doc["families"]}
        assert by_name["repro_c_total"]["samples"][0]["value"] == 2
        gauge_sample = by_name["repro_g"]["samples"][0]
        assert gauge_sample["value"] == 1.0
        assert gauge_sample["series"] == [[0.0, 1.0]]
        hist_sample = by_name["repro_h_seconds"]["samples"][0]
        assert hist_sample["count"] == 1
        assert hist_sample["buckets"][-1][1] == 1
        assert "p95" in hist_sample["summary"]

    def test_render_json_text_round_trips(self):
        reg = LiveRegistry()
        reg.counter("c_total").inc()
        text = render_json_text(reg)
        assert text.endswith("\n")
        assert json.loads(text)["families"][0]["name"] == "repro_c_total"


# ----------------------------------------------------------------------
# Profiler publication
# ----------------------------------------------------------------------
class TestPublishProfiler:
    def make_profiler(self):
        prof = SimProfiler()
        prof.events_processed = 40
        prof.wall_seconds = 1.5
        for _ in range(4):
            prof.add_pass(0.01)
        prof.add_span("dispatch", 0.002)
        prof.add_span("dispatch", 0.004)
        prof.count("heap_pop", 9)
        return prof

    def test_publishes_pass_and_span_stats(self):
        reg = LiveRegistry()
        publish_profiler(reg, self.make_profiler())
        text = reg.render_prometheus()
        assert "repro_sim_events_processed 40\n" in text
        assert "repro_sim_schedule_passes 4\n" in text
        assert "repro_sim_schedule_pass_p95_seconds" in text
        assert 'repro_sim_span_calls{span="dispatch"} 2\n' in text
        assert 'repro_sim_hotpath_calls{counter="heap_pop"} 9\n' in text

    def test_republication_sets_not_increments(self):
        reg = LiveRegistry()
        prof = self.make_profiler()
        publish_profiler(reg, prof)
        publish_profiler(reg, prof)
        assert reg.gauge("sim_schedule_passes").value == 4.0
        assert reg.gauge("sim_events_processed").value == 40.0


class TestProfilerSummaries:
    def test_span_summary_percentiles(self):
        prof = SimProfiler()
        for index in range(100):
            prof.add_span("s", (index + 1) / 1000.0)
        summary = prof.span_summary()["s"]
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(0.050)
        assert summary["p95"] == pytest.approx(0.095)
        assert summary["max"] == pytest.approx(0.100)

    def test_reservoirs_are_bounded(self):
        from repro.obs.prof import RESERVOIR_SIZE
        prof = SimProfiler()
        for _ in range(RESERVOIR_SIZE + 100):
            prof.add_pass(0.001)
        assert len(prof.pass_samples) == RESERVOIR_SIZE
        assert prof.pass_summary()["count"] == RESERVOIR_SIZE + 100


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
class TestDashboard:
    def test_page_is_self_contained(self):
        reg = LiveRegistry()
        reg.gauge("jobs", "jobs").set(1.0, time=0.0)
        page = render_dashboard(reg, title="t", poll_seconds=3.0)
        assert page.startswith("<!DOCTYPE html>")
        # Zero external assets: no http(s) URLs, no external src/href.
        assert "http://" not in page and "https://" not in page
        assert "src=" not in page and 'rel="stylesheet"' not in page
        assert "<style>" in page and "<script>" in page
        assert "var POLL_MS = 3000;" in page

    def test_title_is_escaped(self):
        page = render_dashboard(LiveRegistry(), title="<svc> & co")
        assert "&lt;svc&gt; &amp; co" in page
        assert "<svc>" not in page

    def test_gauge_history_renders_chart(self):
        reg = LiveRegistry()
        gauge = reg.gauge("depth", "queue depth")
        for tick in range(5):
            gauge.set(float(tick), time=float(tick))
        assert "<svg" in render_dashboard(reg)

    def test_placeholder_without_history(self):
        assert "no gauge history yet" in render_dashboard(LiveRegistry())


# ----------------------------------------------------------------------
# Structured logging context
# ----------------------------------------------------------------------
class TestLogContext:
    def test_nested_merge_inner_wins_and_resets(self):
        assert current_context() == {}
        with log_context(tick=1, wal_segment="seg-0"):
            with log_context(tick=2, job_id="j1"):
                assert current_context() == {
                    "tick": 2, "wal_segment": "seg-0", "job_id": "j1"}
            assert current_context() == {"tick": 1,
                                         "wal_segment": "seg-0"}
        assert current_context() == {}

    def test_json_formatter_carries_context(self):
        record = logging.LogRecord("repro.serve", logging.INFO, "f", 1,
                                   "applied tick %d", (7,), None)
        with log_context(tick=7, wal_segment="wal-000001"):
            doc = json.loads(JsonFormatter().format(record))
        assert doc == {"level": "info", "logger": "repro.serve",
                       "message": "applied tick 7", "tick": 7,
                       "wal_segment": "wal-000001"}

    def test_record_fields_beat_context_on_collision(self):
        record = logging.LogRecord("repro.x", logging.INFO, "f", 1,
                                   "m", (), None)
        record.repro_context = {"message": "clobber", "tick": 1}
        doc = json.loads(JsonFormatter().format(record))
        assert doc["message"] == "m"  # setdefault keeps the real one
        assert doc["tick"] == 1

    def test_configure_logging_json_lines_parse(self):
        stream = io.StringIO()
        configure_logging("INFO", stream=stream, fmt="json")
        logger = logging.getLogger("repro.test.telemetry")
        with log_context(tick=3, job_id="job0"):
            logger.info("hello %s", "world")
        configure_logging("WARNING", stream=io.StringIO(), fmt="text")
        line = stream.getvalue().strip()
        doc = json.loads(line)
        assert doc["message"] == "hello world"
        assert doc["tick"] == 3
        assert doc["job_id"] == "job0"
        assert doc["level"] == "info"
        assert doc["logger"] == "repro.test.telemetry"


# ----------------------------------------------------------------------
# Lint scope: the live plane is state-sink code (RPR009)
# ----------------------------------------------------------------------
class TestLintScope:
    def test_obs_modules_are_rpr009_scoped(self):
        # New obs/serve modules are covered by the atomic-write rule via
        # their package, with no per-file allowlisting to keep fresh.
        assert "obs" in STATE_SINK_PACKAGES
        assert "serve" in STATE_SINK_PACKAGES
        for path in ("src/repro/obs/live.py", "src/repro/serve/daemon.py"):
            visitor = _DeterminismVisitor(path)
            assert visitor.in_state_sink, path

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS))
