"""Tests for consolidated and shared placement."""

import pytest

from repro.cluster import Cluster, find_consolidated, find_shared
from repro.cluster.placement import free_gpu_fragmentation


@pytest.fixture
def cluster():
    return Cluster({"vc1": 3, "vc2": 1})


def occupy(cluster, node_idx, count, job_id=1000):
    node = cluster.nodes[node_idx]
    for gpu in node.gpus[:count]:
        gpu.attach(job_id, 100)


class TestConsolidated:
    def test_single_gpu(self, cluster):
        gpus = find_consolidated(cluster, 1)
        assert gpus is not None and len(gpus) == 1

    def test_best_fit_prefers_fuller_node(self, cluster):
        occupy(cluster, 0, 6)  # node 0 has 2 free
        gpus = find_consolidated(cluster, 2, vc="vc1")
        assert gpus is not None
        assert all(g.node_id == 0 for g in gpus)  # best fit, not node 1

    def test_single_node_request_never_spans_nodes(self, cluster):
        occupy(cluster, 0, 4)
        occupy(cluster, 1, 4)
        occupy(cluster, 2, 4)
        # 12 GPUs free total but only 4 per node.
        assert find_consolidated(cluster, 8, vc="vc1") is None
        gpus = find_consolidated(cluster, 4, vc="vc1")
        assert len({g.node_id for g in gpus}) == 1

    def test_multi_node_takes_full_nodes(self, cluster):
        gpus = find_consolidated(cluster, 16, vc="vc1")
        assert gpus is not None and len(gpus) == 16
        assert len({g.node_id for g in gpus}) == 2

    def test_multi_node_with_remainder(self, cluster):
        gpus = find_consolidated(cluster, 20, vc="vc1")
        assert gpus is not None and len(gpus) == 20
        assert len({g.node_id for g in gpus}) == 3

    def test_multi_node_fails_without_empty_nodes(self, cluster):
        for i in range(3):
            occupy(cluster, i, 1)
        assert find_consolidated(cluster, 16, vc="vc1") is None

    def test_vc_isolation(self, cluster):
        assert find_consolidated(cluster, 16, vc="vc2") is None
        assert find_consolidated(cluster, 8, vc="vc2") is not None

    def test_exhausted_cluster(self, cluster):
        for i in range(4):
            occupy(cluster, i, 8)
        assert find_consolidated(cluster, 1) is None


class TestShared:
    def test_join_mate_gpus(self, cluster):
        occupy(cluster, 0, 2, job_id=7)
        mate_gpus = cluster.nodes[0].gpus[:2]
        gpus = find_shared(cluster, mate_gpus, memory_mb=500)
        assert gpus == list(mate_gpus)

    def test_oom_blocks_sharing(self, cluster):
        node = cluster.nodes[0]
        node.gpus[0].attach(7, node.gpus[0].memory_mb - 100)
        assert find_shared(cluster, [node.gpus[0]], memory_mb=500) is None

    def test_full_gpu_blocks_sharing(self, cluster):
        node = cluster.nodes[0]
        node.gpus[0].attach(7, 100)
        node.gpus[0].attach(8, 100)
        assert find_shared(cluster, [node.gpus[0]], memory_mb=100) is None


class TestFragmentation:
    def test_empty_cluster_no_fragmentation(self, cluster):
        assert free_gpu_fragmentation(cluster) == pytest.approx(1 - 8 / 32)

    def test_fully_busy(self, cluster):
        for i in range(4):
            occupy(cluster, i, 8)
        assert free_gpu_fragmentation(cluster) == 0.0

    def test_scattered_worse_than_consolidated(self):
        scattered = Cluster({"a": 4})
        for i in range(4):
            for gpu in scattered.nodes[i].gpus[:6]:
                gpu.attach(1, 100)
        consolidated = Cluster({"a": 4})
        for i in range(3):
            for gpu in consolidated.nodes[i].gpus:
                gpu.attach(1, 100)
        assert (free_gpu_fragmentation(scattered)
                > free_gpu_fragmentation(consolidated))
