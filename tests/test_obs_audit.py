"""Tests for the scheduler decision audit."""

import json

import pytest

from repro.core import LucidConfig, LucidScheduler, UpdateEngine
from repro.obs import (
    BinderVerdict,
    DecisionAudit,
    PlacementDecision,
    RingBufferTracer,
)
from repro.sim import Simulator
from repro.traces import TraceGenerator, TraceSpec


def _lucid_run(tracer=None, audit=None, **config_changes):
    spec = TraceSpec(name="tiny", n_nodes=4, n_vcs=2, n_jobs=40,
                     full_n_jobs=40, mean_duration=1500.0, span_days=0.25,
                     n_users=6, seed=21)
    generator = TraceGenerator(spec)
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    config = LucidConfig(**config_changes)
    scheduler = LucidScheduler(history, config=config, audit=audit)
    sim = Simulator(cluster, jobs, scheduler, tracer=tracer)
    return sim.run(), scheduler, sim


class TestLucidAudit:
    def test_every_start_has_exactly_one_matching_record(self):
        # Profiler off: each job starts exactly once, via the orchestrator.
        tracer = RingBufferTracer()
        result, scheduler, _ = _lucid_run(tracer=tracer,
                                          enable_profiler=False,
                                          instability_rate=0.0)
        audit = result.telemetry.audit
        assert audit is scheduler.audit and audit is not None

        starts = tracer.of_kind("start")
        assert len(starts) == len(result.records)  # one start per job
        assert len(audit) == len(starts)
        for event in starts:
            decisions = audit.for_job(event.job_id)
            assert len(decisions) == 1
            # The audited GPU set is the engine's gpus_of at start time.
            assert list(decisions[0].gpu_ids) == event.data["gpus"]
            assert list(decisions[0].node_ids) == event.data["nodes"]
            assert decisions[0].mode in ("shared", "exclusive", "relaxed",
                                         "shared-fallback")

    def test_profiler_runs_are_audited_too(self):
        tracer = RingBufferTracer()
        result, _, _ = _lucid_run(tracer=tracer)
        audit = result.telemetry.audit
        starts = tracer.of_kind("start")
        assert len(audit) == len(starts)
        profiled = [e for e in starts if e.data["profiling"]]
        assert profiled, "tiny trace should profile some jobs"
        for event in profiled:
            modes = [d.mode for d in audit.for_job(event.job_id)]
            assert "profiling" in modes

    def test_explicit_audit_without_tracer(self):
        audit = DecisionAudit()
        result, scheduler, _ = _lucid_run(audit=audit,
                                          enable_profiler=False)
        assert result.telemetry is None  # untraced run stays untraced
        assert len(audit) == len(result.records)
        text = audit.explain(result.records[0].job_id)
        assert "priority" in text

    def test_decisions_mirrored_as_trace_events(self):
        tracer = RingBufferTracer()
        result, _, _ = _lucid_run(tracer=tracer, enable_profiler=False)
        decisions = tracer.of_kind("decision")
        assert len(decisions) == len(result.telemetry.audit)

    def test_audit_jsonl_export(self, tmp_path):
        tracer = RingBufferTracer()
        result, _, _ = _lucid_run(tracer=tracer, enable_profiler=False)
        path = str(tmp_path / "audit.jsonl")
        written = result.telemetry.audit.to_jsonl(path)
        lines = [json.loads(line) for line in open(path)]
        assert len(lines) == written == len(result.telemetry.audit) + \
            len(result.telemetry.audit.refits)
        assert all("mode" in line or line.get("kind") == "refit"
                   for line in lines)


class TestBinderVerdict:
    def test_accept_and_decline_render(self):
        accept = BinderVerdict(job_id=1, mate_id=2, mode="DEFAULT",
                               gss_capacity=2, job_score=1, mate_score=1,
                               candidates=3)
        assert accept.accepted
        assert "mate 2" in accept.reason_text()

        decline = BinderVerdict(job_id=1, mate_id=None, mode="DEFAULT",
                                gss_capacity=2, job_score=2, candidates=4,
                                rejections={"gss_budget": 3, "memory": 1})
        assert not decline.accepted
        assert "gss_budget x3" in decline.reason_text()

        disabled = BinderVerdict(job_id=1, mate_id=None, mode="DISABLED",
                                 gss_capacity=0)
        assert "sharing disabled" in disabled.reason_text()

    def test_packed_decision_explanation(self):
        verdict = BinderVerdict(job_id=42, mate_id=17, mode="DEFAULT",
                                gss_capacity=2, job_score=1, mate_score=1,
                                candidates=5)
        decision = PlacementDecision(
            time=120.0, job_id=42, mode="shared", gpu_ids=(4, 5),
            node_ids=(0, 0), priority=3600.0, estimated_duration=1800.0,
            sharing_mode="eager", mate_id=17, binder=verdict)
        text = decision.explain()
        assert "packed with job 17" in text
        assert "binder accepted mate 17" in text


class TestRefitAudit:
    class _StubEstimator:
        def __init__(self):
            self.updates = 0
            self.refit_calls = 0

        def update(self, record):
            self.updates += 1

        def refit(self):
            self.refit_calls += 1

    class _Record:
        pass

    def test_refit_recorded(self):
        audit = DecisionAudit()
        estimator = self._StubEstimator()
        engine = UpdateEngine(estimator, interval=100.0, min_new_records=2)
        engine.audit = audit
        engine.collect(self._Record(), now=0.0)
        engine.collect(self._Record(), now=1.0)
        assert not engine.maybe_refit(50.0)
        assert engine.maybe_refit(150.0)
        assert len(audit.refits) == 1
        assert audit.refits[0].new_records == 2
        assert audit.refits[0].model == "workload_estimate"

    class _QualityEstimator(_StubEstimator):
        def fit_quality(self):
            return 0.75, 42

    def test_refit_quality_recorded(self):
        audit = DecisionAudit()
        estimator = self._QualityEstimator()
        engine = UpdateEngine(estimator, interval=100.0, min_new_records=1)
        engine.audit = audit
        engine.collect(self._Record(), now=0.0)
        assert engine.maybe_refit(150.0)
        record = audit.refits[0]
        assert record.r2 == 0.75
        assert record.samples == 42
        assert record.wall_seconds is None  # unprofiled run
        assert engine.last_quality == (0.75, 42, None)
        exported = record.to_dict()
        assert exported["r2"] == 0.75 and exported["samples"] == 42
        assert "wall_seconds" not in exported

    def test_refit_wall_time_via_profiler_span(self):
        from repro.obs import SimProfiler

        engine = UpdateEngine(self._StubEstimator(), interval=100.0,
                              min_new_records=1)
        engine.profiler = SimProfiler()
        engine.collect(self._Record(), now=0.0)
        assert engine.maybe_refit(150.0)
        _, _, wall = engine.last_quality
        assert wall is not None and wall >= 0.0
        assert engine.profiler.span_counts.get("lucid.refit") == 1


class TestAtomicJsonlExport:
    def _audit_with_one_decision(self):
        audit = DecisionAudit()
        audit.record(PlacementDecision(
            time=1.0, job_id=7, mode="exclusive", gpu_ids=(0,),
            node_ids=(0,), priority=10.0, estimated_duration=100.0,
            sharing_mode="off"))
        return audit

    def test_creates_parent_directories(self, tmp_path):
        audit = self._audit_with_one_decision()
        path = tmp_path / "deeply" / "nested" / "audit.jsonl"
        assert audit.to_jsonl(str(path)) == 1
        assert path.exists()

    def test_no_tmp_file_left_behind(self, tmp_path):
        audit = self._audit_with_one_decision()
        path = tmp_path / "audit.jsonl"
        audit.to_jsonl(str(path))
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["audit.jsonl"]

    def test_round_trip_preserves_attributions(self, tmp_path):
        audit = DecisionAudit(attribution=True)
        result, scheduler, _ = _lucid_run(audit=audit,
                                          enable_profiler=False)
        assert any(d.attribution is not None for d in audit.records)
        path = str(tmp_path / "audit.jsonl")
        audit.to_jsonl(path)
        reloaded = DecisionAudit.from_jsonl(path)
        assert len(reloaded) == len(audit)
        assert len(reloaded.refits) == len(audit.refits)
        for before, after in zip(audit.records, reloaded.records):
            assert after.to_dict() == before.to_dict()
            if before.attribution is not None:
                assert after.attribution is not None
                assert after.attribution.terms == before.attribution.terms


class TestCounterfactual:
    def _audited_packing_model(self):
        from repro.core import PackingAnalyzeModel
        from repro.workloads import InterferenceModel, ResourceProfile

        model = PackingAnalyzeModel().fit(InterferenceModel())
        audit = DecisionAudit(attribution=True)
        audit.bind_vector_attributor("sharing", model.attribute_vector)
        profile = ResourceProfile(95.0, 60.0, 9000.0, False)
        verdict = BinderVerdict(job_id=5, mate_id=None, mode="DEFAULT",
                                gss_capacity=2, job_score=2,
                                attribution=model.attribute(profile))
        audit.record(PlacementDecision(
            time=1.0, job_id=5, mode="exclusive", gpu_ids=(0,),
            node_ids=(0,), priority=10.0, estimated_duration=100.0,
            sharing_mode="eager", binder=verdict))
        return audit, model

    def test_sharing_counterfactual_reruns_frozen_model(self):
        audit, model = self._audited_packing_model()
        probe = audit.counterfactual(5, which="sharing", gpu_util=5.0)
        assert probe.which == "sharing"
        assert probe.overrides == {"gpu_util": 5.0}
        # A near-idle GPU should score no higher than the busy baseline.
        assert probe.probe.predicted <= probe.baseline.predicted
        assert probe.delta == probe.probe.predicted - \
            probe.baseline.predicted
        assert "with gpu_util=5" in probe.render()

    def test_unknown_kind_raises_keyerror(self):
        audit, _ = self._audited_packing_model()
        with pytest.raises(KeyError, match="no frozen model"):
            audit.counterfactual(5, which="weather")

    def test_unknown_feature_raises_valueerror(self):
        audit, _ = self._audited_packing_model()
        with pytest.raises(ValueError, match="unknown feature"):
            audit.counterfactual(5, which="sharing", flux=1.0)

    def test_job_without_attribution_raises_keyerror(self):
        audit, _ = self._audited_packing_model()
        with pytest.raises(KeyError, match="no recorded"):
            audit.counterfactual(999, which="sharing")
