"""Tests for the scheduler decision audit."""

import json

from repro.core import LucidConfig, LucidScheduler, UpdateEngine
from repro.obs import (
    BinderVerdict,
    DecisionAudit,
    PlacementDecision,
    RingBufferTracer,
)
from repro.sim import Simulator
from repro.traces import TraceGenerator, TraceSpec


def _lucid_run(tracer=None, audit=None, **config_changes):
    spec = TraceSpec(name="tiny", n_nodes=4, n_vcs=2, n_jobs=40,
                     full_n_jobs=40, mean_duration=1500.0, span_days=0.25,
                     n_users=6, seed=21)
    generator = TraceGenerator(spec)
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    config = LucidConfig(**config_changes)
    scheduler = LucidScheduler(history, config=config, audit=audit)
    sim = Simulator(cluster, jobs, scheduler, tracer=tracer)
    return sim.run(), scheduler, sim


class TestLucidAudit:
    def test_every_start_has_exactly_one_matching_record(self):
        # Profiler off: each job starts exactly once, via the orchestrator.
        tracer = RingBufferTracer()
        result, scheduler, _ = _lucid_run(tracer=tracer,
                                          enable_profiler=False,
                                          instability_rate=0.0)
        audit = result.telemetry.audit
        assert audit is scheduler.audit and audit is not None

        starts = tracer.of_kind("start")
        assert len(starts) == len(result.records)  # one start per job
        assert len(audit) == len(starts)
        for event in starts:
            decisions = audit.for_job(event.job_id)
            assert len(decisions) == 1
            # The audited GPU set is the engine's gpus_of at start time.
            assert list(decisions[0].gpu_ids) == event.data["gpus"]
            assert list(decisions[0].node_ids) == event.data["nodes"]
            assert decisions[0].mode in ("shared", "exclusive", "relaxed",
                                         "shared-fallback")

    def test_profiler_runs_are_audited_too(self):
        tracer = RingBufferTracer()
        result, _, _ = _lucid_run(tracer=tracer)
        audit = result.telemetry.audit
        starts = tracer.of_kind("start")
        assert len(audit) == len(starts)
        profiled = [e for e in starts if e.data["profiling"]]
        assert profiled, "tiny trace should profile some jobs"
        for event in profiled:
            modes = [d.mode for d in audit.for_job(event.job_id)]
            assert "profiling" in modes

    def test_explicit_audit_without_tracer(self):
        audit = DecisionAudit()
        result, scheduler, _ = _lucid_run(audit=audit,
                                          enable_profiler=False)
        assert result.telemetry is None  # untraced run stays untraced
        assert len(audit) == len(result.records)
        text = audit.explain(result.records[0].job_id)
        assert "priority" in text

    def test_decisions_mirrored_as_trace_events(self):
        tracer = RingBufferTracer()
        result, _, _ = _lucid_run(tracer=tracer, enable_profiler=False)
        decisions = tracer.of_kind("decision")
        assert len(decisions) == len(result.telemetry.audit)

    def test_audit_jsonl_export(self, tmp_path):
        tracer = RingBufferTracer()
        result, _, _ = _lucid_run(tracer=tracer, enable_profiler=False)
        path = str(tmp_path / "audit.jsonl")
        written = result.telemetry.audit.to_jsonl(path)
        lines = [json.loads(line) for line in open(path)]
        assert len(lines) == written == len(result.telemetry.audit) + \
            len(result.telemetry.audit.refits)
        assert all("mode" in line or line.get("kind") == "refit"
                   for line in lines)


class TestBinderVerdict:
    def test_accept_and_decline_render(self):
        accept = BinderVerdict(job_id=1, mate_id=2, mode="DEFAULT",
                               gss_capacity=2, job_score=1, mate_score=1,
                               candidates=3)
        assert accept.accepted
        assert "mate 2" in accept.reason_text()

        decline = BinderVerdict(job_id=1, mate_id=None, mode="DEFAULT",
                                gss_capacity=2, job_score=2, candidates=4,
                                rejections={"gss_budget": 3, "memory": 1})
        assert not decline.accepted
        assert "gss_budget x3" in decline.reason_text()

        disabled = BinderVerdict(job_id=1, mate_id=None, mode="DISABLED",
                                 gss_capacity=0)
        assert "sharing disabled" in disabled.reason_text()

    def test_packed_decision_explanation(self):
        verdict = BinderVerdict(job_id=42, mate_id=17, mode="DEFAULT",
                                gss_capacity=2, job_score=1, mate_score=1,
                                candidates=5)
        decision = PlacementDecision(
            time=120.0, job_id=42, mode="shared", gpu_ids=(4, 5),
            node_ids=(0, 0), priority=3600.0, estimated_duration=1800.0,
            sharing_mode="eager", mate_id=17, binder=verdict)
        text = decision.explain()
        assert "packed with job 17" in text
        assert "binder accepted mate 17" in text


class TestRefitAudit:
    class _StubEstimator:
        def __init__(self):
            self.updates = 0
            self.refit_calls = 0

        def update(self, record):
            self.updates += 1

        def refit(self):
            self.refit_calls += 1

    class _Record:
        pass

    def test_refit_recorded(self):
        audit = DecisionAudit()
        estimator = self._StubEstimator()
        engine = UpdateEngine(estimator, interval=100.0, min_new_records=2)
        engine.audit = audit
        engine.collect(self._Record(), now=0.0)
        engine.collect(self._Record(), now=1.0)
        assert not engine.maybe_refit(50.0)
        assert engine.maybe_refit(150.0)
        assert len(audit.refits) == 1
        assert audit.refits[0].new_records == 2
        assert audit.refits[0].model == "workload_estimate"
