"""Tests for the fairness extension (paper §6 future work)."""

import numpy as np
import pytest

from repro.analysis.fairness import (
    finish_time_fairness,
    group_slowdowns,
    jain_index,
    slowdown,
    starvation_ratio,
    user_fairness,
    vc_fairness,
)
from repro.sim.metrics import SimulationResult, UtilizationSummary
from repro.workloads.job import JobRecord


def record(job_id, user="u1", vc="a", duration=100.0, jct=150.0,
           queue=50.0):
    return JobRecord(job_id=job_id, name=f"j{job_id}", user=user, vc=vc,
                     submit_time=0.0, duration=duration, gpu_num=1, jct=jct,
                     queue_delay=queue, preemptions=0,
                     finished_in_profiler=False)


@pytest.fixture
def result():
    return SimulationResult(
        records=[
            record(1, user="alice", vc="a", duration=100, jct=100, queue=0),
            record(2, user="alice", vc="a", duration=100, jct=200, queue=100),
            record(3, user="bob", vc="b", duration=100, jct=400, queue=300),
        ],
        makespan=400.0,
        utilization=UtilizationSummary(0.5, 0.0, 0.2),
    )


class TestJainIndex:
    def test_equal_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_value(self):
        assert jain_index([7.0]) == pytest.approx(1.0)

    def test_worst_case(self):
        # One group hogging everything: index -> 1/n.
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])


class TestSlowdowns:
    def test_slowdown(self):
        assert slowdown(record(1, duration=100, jct=250)) == pytest.approx(2.5)

    def test_group_slowdowns_by_user(self, result):
        groups = group_slowdowns(result, lambda r: r.user)
        assert groups["alice"] == pytest.approx(1.5)  # (1.0 + 2.0) / 2
        assert groups["bob"] == pytest.approx(4.0)

    def test_user_fairness_below_one_when_skewed(self, result):
        assert user_fairness(result) < 1.0

    def test_vc_fairness(self, result):
        assert 0.0 < vc_fairness(result) <= 1.0

    def test_perfectly_fair_run(self):
        fair = SimulationResult(
            records=[record(i, user=f"u{i}", duration=100, jct=100, queue=0)
                     for i in range(5)],
            makespan=100.0, utilization=UtilizationSummary(1, 0, 0))
        assert user_fairness(fair) == pytest.approx(1.0)


class TestFinishTimeFairness:
    def test_summary_keys(self, result):
        summary = finish_time_fairness(result)
        assert summary["mean"] == pytest.approx((1 + 2 + 4) / 3)
        assert summary["max"] == pytest.approx(4.0)
        assert summary["p95"] <= summary["max"]

    def test_empty(self):
        empty = SimulationResult([], 0.0, UtilizationSummary(0, 0, 0))
        assert finish_time_fairness(empty)["mean"] == 0.0


class TestStarvation:
    def test_ratio(self, result):
        # queues 0, 100, 300 -> max/mean = 300 / 133.3
        assert starvation_ratio(result) == pytest.approx(300 / (400 / 3))

    def test_no_queueing(self):
        res = SimulationResult([record(1, queue=0.0)], 10.0,
                               UtilizationSummary(0, 0, 0))
        assert starvation_ratio(res) == 1.0


class TestSchedulerFairnessComparison:
    def test_lucid_fairer_than_fifo(self, tiny_spec):
        """Integration: Lucid's user fairness should not trail FIFO's."""
        from repro import Simulator, TraceGenerator, make_scheduler

        def run(name):
            gen = TraceGenerator(tiny_spec)
            cluster = gen.build_cluster()
            history = gen.generate_history()
            return Simulator(cluster, gen.generate(),
                             make_scheduler(name, history)).run()

        lucid = user_fairness(run("lucid"))
        fifo = user_fairness(run("fifo"))
        assert lucid >= fifo - 0.05
