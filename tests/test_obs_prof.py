"""Tests for the simulator self-profiler (``Simulator(profile=...)``)."""

import json

import pytest

from repro.obs import NULL_SPAN, SeriesCollector, SimProfiler, peak_rss_mb
from repro.sim import Simulator
from repro.traces import TraceGenerator


def _build(tiny_spec, scheduler="fifo", **kwargs):
    from repro import make_scheduler

    generator = TraceGenerator(tiny_spec)
    return Simulator(generator.build_cluster(), generator.generate(),
                     make_scheduler(scheduler,
                                    generator.generate_history()),
                     **kwargs)


class TestProfilerUnit:
    def test_event_and_pass_accounting(self):
        profiler = SimProfiler()
        profiler.start_run()
        profiler.enter()
        profiler.exit_event("submit")
        profiler.enter()
        profiler.exit_event("submit")
        profiler.enter()
        profiler.exit_event("finish")
        profiler.add_pass(0.25)
        profiler.count("binder_attempts")
        profiler.count("binder_attempts", 2)
        with profiler.span("lucid.control"):
            pass
        profiler.finish_run(events_processed=3, sim_seconds=7200.0)

        assert profiler.event_counts == {"submit": 2, "finish": 1}
        assert profiler.event_seconds["submit"] >= 0.0
        assert profiler.pass_count == 1
        assert profiler.pass_seconds == 0.25
        assert profiler.counters == {"binder_attempts": 3}
        assert profiler.span_counts == {"lucid.control": 1}
        assert profiler.events_processed == 3
        assert profiler.events_per_sec > 0
        assert profiler.sim_speedup > 0

    def test_to_dict_and_reports(self):
        profiler = SimProfiler()
        profiler.start_run()
        profiler.enter()
        profiler.exit_event("submit")
        profiler.finish_run(events_processed=1, sim_seconds=10.0)

        data = profiler.to_dict()
        for key in ("wall_seconds", "sim_seconds", "sim_speedup",
                    "events_processed", "events_per_sec", "peak_rss_mb",
                    "event_kinds", "schedule_passes", "spans", "counters"):
            assert key in data
        assert data["events_processed"] == 1
        assert data["event_kinds"]["submit"]["count"] == 1
        # report_json round-trips; report() mentions the headline numbers.
        assert json.loads(profiler.report_json()) == data
        text = profiler.report()
        assert "events/s" in text
        assert "submit" in text

    def test_null_span_is_reusable_noop(self):
        with NULL_SPAN:
            with NULL_SPAN:
                pass

    def test_peak_rss_positive_on_linux(self):
        rss = peak_rss_mb()
        assert rss is None or rss > 0


class TestProfilerWiring:
    def test_off_by_default(self, tiny_spec):
        sim = _build(tiny_spec)
        assert sim.profiler is None
        sim.run()
        assert sim.profiler is None

    def test_profile_true_builds_one(self, tiny_spec):
        sim = _build(tiny_spec, profile=True)
        assert isinstance(sim.profiler, SimProfiler)

    def test_counts_cover_the_run(self, tiny_spec):
        profiler = SimProfiler()
        sim = _build(tiny_spec, profile=profiler)
        result = sim.run()
        assert profiler.events_processed == sim._events_processed
        assert sum(profiler.event_counts.values()) == \
            profiler.events_processed
        assert profiler.pass_count > 0
        assert profiler.wall_seconds > 0
        assert profiler.sim_seconds == result.makespan
        assert profiler.counters.get("speed_refreshes", 0) > 0

    def test_sanitizer_sweeps_counted(self, tiny_spec):
        profiler = SimProfiler()
        sim = _build(tiny_spec, profile=profiler, sanitize=True)
        sim.run()
        # One sweep per dispatched event plus one per scheduler pass.
        assert profiler.counters["sanitizer_sweeps"] == \
            profiler.events_processed + profiler.pass_count

    def test_lucid_hot_path_counters_and_spans(self, tiny_spec):
        profiler = SimProfiler()
        sim = _build(tiny_spec, scheduler="lucid", profile=profiler)
        sim.run()
        assert profiler.counters.get("estimator_predictions", 0) > 0
        assert profiler.span_counts.get("lucid.control", 0) > 0
        assert profiler.span_counts.get("lucid.orchestrate", 0) > 0


class TestBitIdentity:
    """The zero-overhead contract: profiling and series collection must
    never perturb simulated outcomes, for every scheduler archetype."""

    @pytest.mark.parametrize("scheduler", ["fifo", "tiresias", "lucid"])
    def test_profiled_run_bit_identical(self, tiny_spec, scheduler):
        plain = _build(tiny_spec, scheduler=scheduler).run()
        instrumented = _build(tiny_spec, scheduler=scheduler,
                              profile=SimProfiler(),
                              series=SeriesCollector(interval=600.0)).run()
        assert instrumented.summary() == plain.summary()
        assert [(r.job_id, r.jct, r.queue_delay, r.preemptions)
                for r in instrumented.records] == \
               [(r.job_id, r.jct, r.queue_delay, r.preemptions)
                for r in plain.records]
