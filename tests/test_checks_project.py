"""End-to-end tests for ``repro lint --project`` (repro.checks.project).

Covers: the real tree lints clean; seeded regressions each produce
exactly the expected RPR1xx finding (layering, replay-safety,
hot-path); SARIF 2.1.0 structural validity; the ratchet failing on an
injected violation; RPR130 unused-suppression detection; and the CLI's
parse-failure behavior (RPR000, exit 1, no traceback).
"""

from __future__ import annotations

import json
import os
import shutil
import textwrap

import pytest

from repro.checks import (
    baseline_delta,
    format_sarif,
    lint_project,
    load_baseline,
    write_baseline,
)
from repro.checks.project import BASELINE_SCHEMA, find_package_dir


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture()
def tree_copy(tmp_path):
    """A disposable copy of the real project tree (src + configs)."""
    root = repo_root()
    shutil.copytree(os.path.join(root, "src", "repro"),
                    tmp_path / "src" / "repro")
    shutil.copy(os.path.join(root, "pyproject.toml"),
                tmp_path / "pyproject.toml")
    bench = os.path.join(root, "benchmarks", "results",
                         "bench_baseline.json")
    os.makedirs(tmp_path / "benchmarks" / "results")
    shutil.copy(bench, tmp_path / "benchmarks" / "results"
                / "bench_baseline.json")
    return tmp_path


def inject(tree, rel, marker, addition):
    """Insert ``addition`` right after the line containing ``marker``."""
    path = os.path.join(str(tree), rel)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for pos, line in enumerate(lines):
        if marker in line:
            lines[pos + 1:pos + 1] = [addition if addition.endswith("\n")
                                      else addition + "\n"]
            break
    else:
        raise AssertionError(f"marker {marker!r} not found in {rel}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)


class TestRealTree:
    def test_project_lint_is_clean(self):
        findings = lint_project(os.path.join(repo_root(), "src", "repro"))
        assert findings == [], "\n".join(
            f"{f.code} {f.path}:{f.line} {f.message}" for f in findings)

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(os.path.join(
            repo_root(), "benchmarks", "lint_baseline.json"))
        assert baseline == {}

    def test_find_package_dir_src_layout(self):
        src = os.path.join(repo_root(), "src")
        assert find_package_dir(src) == os.path.join(src, "repro")
        assert find_package_dir(os.path.join(src, "repro")) \
            == os.path.join(src, "repro")


class TestSeededRegressions:
    """Each canonical violation must surface as exactly its rule."""

    def lint(self, tree):
        return lint_project(str(tree / "src" / "repro"))

    def test_sim_to_serve_import_is_layering_violation(self, tree_copy):
        inject(tree_copy, "src/repro/sim/engine.py",
               "from __future__ import annotations",
               "from repro.serve.core import SimCore as _Smuggled")
        findings = self.lint(tree_copy)
        # The edge violates the layering DAG (RPR101, via both the
        # forbidden list and the allowed list) and — because serve
        # already imports sim — closes an import cycle (RPR100).
        assert findings and {f.code for f in findings} <= {"RPR100",
                                                           "RPR101"}
        rpr101 = [f for f in findings if f.code == "RPR101"]
        assert rpr101 and all(f.path.endswith("sim/engine.py")
                              and "serve" in f.message for f in rpr101)

    def test_simcore_mutation_bypassing_apply_tick_record(self, tree_copy):
        inject(tree_copy, "src/repro/serve/daemon.py",
               "dispositions = apply_tick_record(core, rec)",
               "                core.tick += 1")
        findings = self.lint(tree_copy)
        assert [f.code for f in findings] == ["RPR110"]
        assert findings[0].path.endswith("serve/daemon.py")
        assert "tick" in findings[0].message

    def test_deepcopy_in_hot_span_function(self, tree_copy):
        # LucidScheduler.schedule wraps its work in the profiled
        # "lucid.control" span, so it is a hot root by construction.
        inject(tree_copy, "src/repro/core/lucid.py",
               'with self.profile_span("lucid.control"):',
               "                _ = __import__('copy').deepcopy(self.config)")
        findings = self.lint(tree_copy)
        assert "RPR120" in [f.code for f in findings]
        rpr120 = [f for f in findings if f.code == "RPR120"]
        assert rpr120[0].path.endswith("core/lucid.py")

    def test_event_kind_without_coverage_story(self, tree_copy):
        inject(tree_copy, "src/repro/sim/events.py",
               'RETRY = "retry"',
               '    BACKFILL = "backfill"')
        findings = self.lint(tree_copy)
        assert "RPR111" in [f.code for f in findings]
        rpr111 = [f for f in findings if f.code == "RPR111"]
        assert any("backfill" in f.message for f in rpr111)
        # The same new kind must also declare its lineage cause story.
        rpr114 = [f for f in findings if f.code == "RPR114"]
        assert any("backfill" in f.message for f in rpr114)
        assert all(f.path.endswith("obs/lineage.py") for f in rpr114)

    def test_stale_lineage_cause_entry(self, tree_copy):
        inject(tree_copy, "src/repro/obs/lineage.py",
               "LINEAGE_CAUSE_SCHEMA: Dict[str, str] = {",
               '    "warp_drive": "no such event kind",')
        findings = self.lint(tree_copy)
        rpr114 = [f for f in findings if f.code == "RPR114"]
        assert rpr114 and any("warp_drive" in f.message for f in rpr114)


class TestRatchet:
    def test_ratchet_fails_on_injected_violation(self, tree_copy):
        pkg = str(tree_copy / "src" / "repro")
        root = str(tree_copy)
        baseline_path = str(tree_copy / "lint_baseline.json")
        write_baseline(baseline_path, lint_project(pkg), root)
        data = json.load(open(baseline_path))
        assert data["schema"] == BASELINE_SCHEMA
        assert data["fingerprints"] == {}

        inject(tree_copy, "src/repro/sim/engine.py",
               "from __future__ import annotations",
               "from repro.serve.core import SimCore as _Smuggled")
        fresh = baseline_delta(lint_project(pkg),
                               load_baseline(baseline_path), root)
        assert fresh and {f.code for f in fresh} <= {"RPR100", "RPR101"}
        assert "RPR101" in {f.code for f in fresh}

    def test_baselined_debt_is_tolerated_until_it_grows(self, tree_copy):
        pkg = str(tree_copy / "src" / "repro")
        root = str(tree_copy)
        baseline_path = str(tree_copy / "lint_baseline.json")
        inject(tree_copy, "src/repro/sim/engine.py",
               "from __future__ import annotations",
               "from repro.serve.core import SimCore as _Smuggled")
        dirty = lint_project(pkg)
        assert dirty
        write_baseline(baseline_path, dirty, root)
        # Same debt: the ratchet passes.
        assert baseline_delta(lint_project(pkg),
                              load_baseline(baseline_path), root) == []
        # New debt on top: only the new finding fails the ratchet.
        inject(tree_copy, "src/repro/cluster/placement.py",
               "from __future__ import annotations",
               "from repro.serve.core import SimCore as _Smuggled")
        fresh = baseline_delta(lint_project(pkg),
                               load_baseline(baseline_path), root)
        assert fresh and {f.code for f in fresh} == {"RPR101"}
        assert all(f.path.endswith("cluster/placement.py")
                   for f in fresh)


class TestSarif:
    def test_sarif_is_structurally_valid(self, tree_copy):
        inject(tree_copy, "src/repro/sim/engine.py",
               "from __future__ import annotations",
               "from repro.serve.core import SimCore as _Smuggled")
        findings = lint_project(str(tree_copy / "src" / "repro"))
        document = json.loads(format_sarif(findings, str(tree_copy)))

        assert document["version"] == "2.1.0"
        assert document["$schema"].startswith("https://")
        assert len(document["runs"]) == 1
        run = document["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["help"]["text"]
            assert rule["defaultConfiguration"]["level"] == "error"
        assert len(run["results"]) == len(findings)
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["message"]["text"]
            location = result["locations"][0]["physicalLocation"]
            uri = location["artifactLocation"]["uri"]
            assert not uri.startswith("/") and "\\" not in uri
            assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
            region = location["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_empty_sarif_still_valid(self):
        document = json.loads(format_sarif([], repo_root()))
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"] == []


class TestUnusedSuppressions:
    def build(self, tmp_path, files):
        pkg = tmp_path / "pkg"
        for rel, source in files.items():
            full = pkg / rel
            full.parent.mkdir(parents=True, exist_ok=True)
            full.write_text(textwrap.dedent(source))
        for sub in {os.path.dirname(rel) for rel in files} | {""}:
            init = pkg / sub / "__init__.py"
            if not init.exists():
                init.write_text("")
        return lint_project(str(pkg), repo_root=str(tmp_path))

    def test_dead_noqa_is_flagged(self, tmp_path):
        findings = self.build(tmp_path, {
            "sim/clock.py": """\
                def pure(x):
                    return x + 1  # repro: noqa RPR002
            """,
        })
        assert [f.code for f in findings] == ["RPR130"]
        assert "noqa" in findings[0].message
        assert findings[0].line == 2

    def test_live_noqa_is_not_flagged(self, tmp_path):
        findings = self.build(tmp_path, {
            "sim/clock.py": """\
                import time

                def stamp():
                    return time.time()  # repro: noqa RPR002
            """,
        })
        assert findings == []

    def test_unsuppressed_violation_still_fires(self, tmp_path):
        findings = self.build(tmp_path, {
            "sim/clock.py": """\
                import time

                def stamp():
                    return time.time()
            """,
        })
        assert [f.code for f in findings] == ["RPR002"]


class TestCli:
    def test_syntax_error_file_exits_one_with_rpr000(self, tmp_path,
                                                     capsys):
        from repro.cli import main
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        code = main(["lint", str(bad)])
        out = capsys.readouterr()
        assert code == 1
        assert "RPR000" in out.out
        assert str(bad) in out.out
        assert "Traceback" not in out.out + out.err

    def test_project_mode_end_to_end(self, tree_copy, capsys):
        from repro.cli import main
        src = str(tree_copy / "src")
        baseline = str(tree_copy / "lint_baseline.json")
        assert main(["lint", "--project", src]) == 0
        assert main(["lint", "--project", src, "--update-baseline",
                     "--baseline", baseline]) == 0
        inject(tree_copy, "src/repro/sim/engine.py",
               "from __future__ import annotations",
               "from repro.serve.core import SimCore as _Smuggled")
        code = main(["lint", "--project", src, "--ratchet",
                     "--baseline", baseline])
        out = capsys.readouterr()
        assert code == 1
        assert "RPR101" in out.out

    def test_project_mode_sarif_output(self, capsys):
        from repro.cli import main
        code = main(["lint", "--project", os.path.join(repo_root(), "src"),
                     "--format", "sarif"])
        out = capsys.readouterr()
        assert code == 0
        document = json.loads(out.out)
        assert document["version"] == "2.1.0"

    def test_project_mode_rejects_multiple_paths(self, capsys):
        from repro.cli import main
        assert main(["lint", "--project", "src", "tests"]) == 2
