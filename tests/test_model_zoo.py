"""Tests for the Table-1 model zoo."""

import numpy as np
import pytest

from repro.workloads.model_zoo import (
    GPU_MEMORY_MB,
    MODEL_ZOO,
    ResourceProfile,
    WorkloadConfig,
    all_configurations,
    configurations_sorted_by_util,
    get_model,
    get_profile,
)


def test_zoo_has_all_fourteen_models():
    assert len(MODEL_ZOO) == 14


def test_zoo_model_names_match_table1():
    expected = {"ResNet-50", "MobileNetV3", "ResNet-18", "MobileNetV2",
                "EfficientNet", "VGG-11", "DCGAN", "PointNet", "BERT",
                "LSTM", "Transformer", "PPO", "TD3", "NeuMF"}
    assert set(MODEL_ZOO) == expected


def test_bert_only_batch_32():
    assert get_model("BERT").batch_sizes == (32,)


def test_transformer_and_rl_do_not_support_amp():
    for name in ("Transformer", "PPO", "TD3"):
        assert not get_model(name).supports_amp, name


def test_unknown_model_raises():
    with pytest.raises(KeyError, match="unknown model"):
        get_model("AlexNet")


def test_profile_bounds():
    for config in all_configurations():
        profile = get_profile(config)
        assert 0 < profile.gpu_util <= 100
        assert 0 < profile.gpu_mem_util <= 100
        assert 0 < profile.gpu_mem_mb < GPU_MEMORY_MB


def test_batch_size_increases_utilization():
    spec = get_model("ResNet-18")
    utils = [spec.profile(b, amp=False).gpu_util for b in (32, 64, 128)]
    assert utils[0] < utils[1] < utils[2]


def test_batch_size_increases_memory():
    spec = get_model("VGG-11")
    mems = [spec.profile(b, amp=False).gpu_mem_mb for b in (32, 64, 128)]
    assert mems[0] < mems[1] < mems[2]


def test_amp_reduces_pressure():
    """Mixed precision lowers utilization and memory (Figure 2b basis)."""
    spec = get_model("ResNet-50")
    fp32 = spec.profile(64, amp=False)
    amp = spec.profile(64, amp=True)
    assert amp.gpu_util < fp32.gpu_util
    assert amp.gpu_mem_mb < fp32.gpu_mem_mb
    assert amp.amp and not fp32.amp


def test_unsupported_batch_raises():
    with pytest.raises(ValueError, match="batch size"):
        get_model("BERT").profile(128, amp=False)


def test_unsupported_amp_raises():
    with pytest.raises(ValueError, match="AMP"):
        get_model("PPO").profile(64, amp=True)


def test_rl_models_are_lightest():
    """RL workloads barely load the GPU (Figure 3a: PPO barely interferes)."""
    ordered = configurations_sorted_by_util()
    lightest_models = {c.model for c in ordered[:6]}
    assert "PPO" in lightest_models


def test_heavy_models_at_top():
    ordered = configurations_sorted_by_util()
    heaviest = {c.model for c in ordered[-6:]}
    assert heaviest & {"ResNet-50", "BERT", "DCGAN"}


def test_all_configurations_count():
    # 11 AMP-capable models with batch lists + 3 non-AMP.
    configs = all_configurations()
    assert len(configs) == len({c.key for c in configs})
    for spec in MODEL_ZOO.values():
        per_model = [c for c in configs if c.model == spec.name]
        multiplier = 2 if spec.supports_amp else 1
        assert len(per_model) == len(spec.batch_sizes) * multiplier


def test_profile_noise_stays_in_bounds(rng):
    profile = get_profile(WorkloadConfig("ResNet-50", 128, False))
    for _ in range(50):
        noisy = profile.with_noise(rng)
        assert 0 < noisy.gpu_util <= 100
        assert 0 < noisy.gpu_mem_mb <= GPU_MEMORY_MB
        assert noisy.amp == profile.amp


def test_profile_validation():
    with pytest.raises(ValueError):
        ResourceProfile(gpu_util=150.0, gpu_mem_util=10.0, gpu_mem_mb=100.0)
    with pytest.raises(ValueError):
        ResourceProfile(gpu_util=50.0, gpu_mem_util=-1.0, gpu_mem_mb=100.0)
    with pytest.raises(ValueError):
        ResourceProfile(gpu_util=50.0, gpu_mem_util=10.0, gpu_mem_mb=-5.0)


def test_as_features_roundtrip():
    profile = ResourceProfile(55.0, 33.0, 4096.0, True)
    assert profile.as_features() == (55.0, 33.0, 4096.0, 1.0)
