"""Tests for the Resource Orchestrator, System Tuner and Update Engine."""

import numpy as np
import pytest

from repro.core.estimator import WorkloadEstimateModel
from repro.core.orchestrator import ResourceOrchestrator
from repro.core.tuner import SystemTuner
from repro.core.update_engine import UpdateEngine
from repro.traces import TraceGenerator, VENUS
from repro.workloads.job import JobRecord

from conftest import make_job
from test_binder import engine_with_running


def no_mate(job):
    return None


class TestOrchestrator:
    def test_priority_order_respected(self):
        """Lower priority (gpu x estimate) starts first under scarcity."""
        running = make_job(1, gpu_num=8)
        running.sharing_score = 2
        short = make_job(2, gpu_num=8, duration=100.0)
        long = make_job(3, gpu_num=8, duration=100.0)
        sim = engine_with_running([running] * 0 or [running],
                                  extra=[short, long])
        # Cluster: 4 nodes of 8 -> 3 free nodes; both fit, order via priority.
        orchestrator = ResourceOrchestrator()
        estimates = {2: 100.0, 3: 50_000.0}
        placed = orchestrator.schedule(
            sim, [long, short],
            priority_fn=lambda j: j.gpu_num * estimates[j.job_id],
            find_mate=no_mate, sharing_mode="off")
        assert [j.job_id for j in placed] == [2, 3]

    def test_skips_unplaceable(self):
        running = make_job(1, gpu_num=8)
        big = make_job(2, gpu_num=32)  # cluster has 3 free nodes = 24 GPUs
        small = make_job(3, gpu_num=1)
        sim = engine_with_running([running], extra=[big, small])
        orchestrator = ResourceOrchestrator()
        placed = orchestrator.schedule(
            sim, [big, small], priority_fn=lambda j: 0.0,
            find_mate=no_mate, sharing_mode="off")
        assert [j.job_id for j in placed] == [3]

    def test_eager_packs_before_exclusive(self):
        mate = make_job(1, gpu_util=10.0)
        mate.sharing_score = 0
        job = make_job(2, gpu_util=10.0)
        job.sharing_score = 0
        sim = engine_with_running([mate], extra=[job])
        orchestrator = ResourceOrchestrator()
        placed = orchestrator.schedule(
            sim, [job], priority_fn=lambda j: 0.0,
            find_mate=lambda j: mate, sharing_mode="eager")
        assert placed == [job]
        assert sim.mates_of(job) == [mate]

    def test_fallback_prefers_exclusive(self):
        mate = make_job(1, gpu_util=10.0)
        mate.sharing_score = 0
        job = make_job(2, gpu_util=10.0)
        job.sharing_score = 0
        sim = engine_with_running([mate], extra=[job])
        orchestrator = ResourceOrchestrator()
        placed = orchestrator.schedule(
            sim, [job], priority_fn=lambda j: 0.0,
            find_mate=lambda j: mate, sharing_mode="fallback")
        assert placed == [job]
        assert sim.mates_of(job) == []  # free GPUs existed -> exclusive

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ResourceOrchestrator().schedule(None, [], lambda j: 0,
                                            no_mate, sharing_mode="bogus")


class TestSystemTuner:
    def test_t_prof_tracks_distribution(self):
        durations = [30.0] * 45 + [10_000.0] * 55
        # With 45% of jobs at 30 s, a 40% target needs only the floor ...
        low = SystemTuner.recommend_t_prof(durations, target_finish_rate=0.40)
        assert low == 60.0
        # ... while a 50% target runs into the long mass and clamps high.
        high = SystemTuner.recommend_t_prof(durations, target_finish_rate=0.50)
        assert high == 600.0

    def test_t_prof_bounds_clamped(self):
        assert SystemTuner.recommend_t_prof([1.0] * 10) == 60.0
        assert SystemTuner.recommend_t_prof([1e6] * 10) == 600.0

    def test_t_prof_validation(self):
        with pytest.raises(ValueError):
            SystemTuner.recommend_t_prof([])
        with pytest.raises(ValueError):
            SystemTuner.recommend_t_prof([1.0], target_finish_rate=1.5)

    def test_profiler_nodes_scale_with_demand(self):
        light = [make_job(i, duration=100.0, gpu_num=1) for i in range(10)]
        heavy = [make_job(i, duration=10_000.0, gpu_num=8)
                 for i in range(500)]
        span = 86_400.0
        assert (SystemTuner.recommend_profiler_nodes(heavy, 200.0, span)
                > SystemTuner.recommend_profiler_nodes(light, 200.0, span))

    def test_profiler_nodes_at_least_one(self):
        assert SystemTuner.recommend_profiler_nodes([], 200.0, 86_400.0) == 1

    def test_threshold_grid_valid(self):
        grid = SystemTuner.binder_threshold_grid()
        assert all(m < t for m, t in grid)
        assert (0.85, 0.95) in grid

    def test_monotonic_constraint_helper(self):
        gen = TraceGenerator(VENUS.with_jobs(300))
        history = gen.generate_history(1.0)
        estimator = WorkloadEstimateModel(random_state=0).fit(history)
        SystemTuner.apply_monotonic_constraints(estimator)  # must not raise


class TestUpdateEngine:
    def _record(self, i, duration=100.0):
        return JobRecord(job_id=i, name=f"t{i}", user="u", vc="v",
                         submit_time=0.0, duration=duration, gpu_num=1,
                         jct=duration, queue_delay=0.0, preemptions=0,
                         finished_in_profiler=False)

    class _SpyEstimator:
        def __init__(self):
            self.updates = 0
            self.refits = 0

        def update(self, record):
            self.updates += 1

        def refit(self):
            self.refits += 1

    def test_collect_updates_immediately(self):
        spy = self._SpyEstimator()
        engine = UpdateEngine(spy, interval=100.0, min_new_records=1)
        engine.collect(self._record(1), now=0.0)
        assert spy.updates == 1

    def test_refit_after_interval(self):
        spy = self._SpyEstimator()
        engine = UpdateEngine(spy, interval=100.0, min_new_records=1)
        engine.collect(self._record(1), now=0.0)
        assert not engine.maybe_refit(50.0)
        assert engine.maybe_refit(150.0)
        assert spy.refits == 1

    def test_no_refit_without_enough_data(self):
        spy = self._SpyEstimator()
        engine = UpdateEngine(spy, interval=100.0, min_new_records=10)
        engine.collect(self._record(1), now=0.0)
        assert not engine.maybe_refit(500.0)

    def test_static_mode(self):
        spy = self._SpyEstimator()
        engine = UpdateEngine(spy, interval=None)
        engine.collect(self._record(1), now=0.0)
        assert not engine.maybe_refit(1e9)
        assert spy.refits == 0

    def test_none_estimator_tolerated(self):
        engine = UpdateEngine(None, interval=100.0)
        engine.collect(self._record(1), now=0.0)
        assert not engine.maybe_refit(1e9)
