"""Tests for the Workload Estimate Model (§3.5.3)."""

import numpy as np
import pytest

from repro.core.estimator import WorkloadEstimateModel, _name_stem
from repro.models.metrics import r2_score
from repro.traces import TraceGenerator, VENUS

from conftest import make_job


@pytest.fixture(scope="module")
def venus_data():
    gen = TraceGenerator(VENUS.with_jobs(600))
    history = gen.generate_history(1.0)
    jobs = gen.generate()
    for job in jobs:
        job.measured_profile = job.profile
    return history, jobs


@pytest.fixture(scope="module")
def model(venus_data):
    history, _ = venus_data
    return WorkloadEstimateModel(random_state=0).fit(history)


class TestNameStem:
    def test_strips_run_suffix(self):
        assert _name_stem("u1-resnet-g4-t00017") == "u1-resnet-g4"
        assert _name_stem("job_123") == "job"
        assert _name_stem("nosuffix") == "nosuffix"


class TestPrediction:
    def test_positive_predictions(self, model, venus_data):
        _, jobs = venus_data
        preds = model.predict_batch(jobs[:100])
        assert np.all(preds > 0)

    def test_reasonable_r2(self, model, venus_data):
        """Prediction quality in the Table-7 band (R² clearly positive)."""
        _, jobs = venus_data
        preds = model.predict_batch(jobs)
        actual = np.array([j.duration for j in jobs])
        assert r2_score(np.log(actual), np.log(preds)) > 0.3

    def test_recurring_template_matched(self, model, venus_data):
        history, _ = venus_data
        recurring = history[len(history) // 2]
        pred = model.predict(recurring)
        # Prediction should be in the ballpark of the template's history.
        same = [j.duration for j in history
                if j.user == recurring.user and j.name == recurring.name]
        assert min(same) / 5 <= pred <= max(same) * 5

    def test_new_user_falls_back_to_gpu_demand(self, model, venus_data):
        history, _ = venus_data
        job = make_job(999999, gpu_num=1, user="brand-new-user",
                       name="never-seen")
        pred = model.predict(job)
        same_gpu = [j.duration for j in history if j.gpu_num == 1]
        assert pred == pytest.approx(np.mean(same_gpu))

    def test_known_user_new_template_uses_model(self, model, venus_data):
        history, _ = venus_data
        user = history[0].user
        job = make_job(999998, user=user, name="totally-fresh-job-name")
        pred = model.predict(job)
        assert 10.0 < pred < 30 * 86400.0

    def test_fit_requires_history(self):
        with pytest.raises(ValueError):
            WorkloadEstimateModel().fit([])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            WorkloadEstimateModel().predict(make_job())


class TestUpdateAndRefit:
    def test_update_shifts_template_estimate(self, venus_data):
        history, _ = venus_data
        model = WorkloadEstimateModel(random_state=0).fit(history)
        job = make_job(5000, user="fresh", name="fresh-template-t1",
                       duration=7777.0)
        before = model.predict(job)
        from repro.workloads.job import JobRecord
        job.finish_time = job.submit_time + 7777.0
        for _ in range(4):
            model.update(JobRecord.from_job(job))
        after = model.predict(job)
        assert abs(after - 7777.0) < abs(before - 7777.0)

    def test_refit_runs(self, venus_data):
        history, _ = venus_data
        model = WorkloadEstimateModel(random_state=0).fit(history[:300])
        for job in history[300:350]:
            model.update(job)
        model.refit()
        assert model.predict(history[0]) > 0


class TestProfileAblation:
    def test_profile_features_help(self, venus_data):
        """§4.8: profiled features improve duration estimation."""
        history, jobs = venus_data
        actual = np.log([j.duration for j in jobs])
        with_profile = WorkloadEstimateModel(use_profile=True,
                                             random_state=0).fit(history)
        without = WorkloadEstimateModel(use_profile=False,
                                        random_state=0).fit(history)
        r2_with = r2_score(actual, np.log(with_profile.predict_batch(jobs)))
        r2_without = r2_score(actual, np.log(without.predict_batch(jobs)))
        # Template matching does the heavy lifting either way, so demand
        # only a non-degradation plus a small edge on the model path.
        assert r2_with >= r2_without - 0.02


class TestInterpretation:
    def test_global_explanation(self, model):
        explanation = model.explain_global()
        assert len(explanation.feature_names) == 9
        assert explanation.importances.shape == (9,)

    def test_local_explanation_decomposes(self, model, venus_data):
        _, jobs = venus_data
        local = model.explain_local(jobs[0])
        assert len(local.contributions) >= 9
        assert np.isfinite(local.prediction)

    def test_monotonic_constraint_applies(self, venus_data):
        from repro.models.isotonic import is_monotonic
        history, _ = venus_data
        model = WorkloadEstimateModel(random_state=0).fit(history)
        model.constrain_gpu_monotonic()
        idx = model._feature_names().index("gpu_num")
        _, values = model._model.shape_function(idx)
        assert is_monotonic(values, increasing=True)
