"""SimSanitizer tests: deliberate state corruption + determinism contract.

Each test corrupts a live engine's state in one precise way and asserts
the sanitizer raises :class:`SanitizerError` with a message naming the
violated invariant.  A second group guards the zero-overhead contract:
disabled by default, and bit-identical results when enabled.
"""

from __future__ import annotations

import pytest

from repro import Simulator, TraceGenerator, make_scheduler
from repro.checks import SanitizerError
from repro.checks.sanitizer import ALLOWED_TRANSITIONS
from repro.cluster import Cluster
from repro.schedulers import FIFOScheduler
from repro.sim.events import EventKind
from repro.workloads import JobStatus

from conftest import make_job


def fresh_sim(jobs=None, sanitize=True):
    cluster = Cluster.homogeneous(1, vc_name="vc1")
    jobs = jobs if jobs is not None else [make_job(1, gpu_num=2)]
    return Simulator(cluster, jobs, FIFOScheduler(), sanitize=sanitize)


def started_sim():
    """An engine with job 1 legally RUNNING on two GPUs, sweeps clean."""
    sim = fresh_sim()
    job = sim.jobs[1]
    job.status = JobStatus.PENDING
    sim.sanitizer.after_schedule()           # SUBMITTED -> PENDING
    sim.start_job(job, sim.cluster.gpus[:2])
    sim.sanitizer.after_schedule()           # PENDING -> RUNNING
    return sim, job


class TestCleanState:
    def test_clean_sweeps_pass(self):
        sim, _ = started_sim()
        before = sim.sanitizer.checks_run
        sim.sanitizer.after_schedule()
        assert sim.sanitizer.checks_run == before + 1

    def test_after_dispatch_context_names_event(self):
        sim, _ = started_sim()
        sim.now = -1.0  # rewind so the failure carries the event context
        event = sim.events.push(0.0, EventKind.TICK, job_id=None)
        with pytest.raises(SanitizerError, match="after tick event"):
            sim.sanitizer.after_dispatch(event)

    def test_summary_line(self):
        sim, _ = started_sim()
        assert "invariant sweeps, all clean" in sim.sanitizer.summary()


class TestClockInvariant:
    def test_rewound_clock_detected(self):
        sim, _ = started_sim()
        sim.now = 50.0
        sim.sanitizer.after_schedule()
        sim.now = 10.0
        with pytest.raises(SanitizerError, match="event clock rewound"):
            sim.sanitizer.after_schedule()

    def test_forward_clock_fine(self):
        sim, _ = started_sim()
        sim.now = 50.0
        sim.sanitizer.after_schedule()
        sim.now = 60.0
        sim.sanitizer.after_schedule()


class TestAllocationInvariants:
    def test_double_bound_gpu_detected(self):
        sim, _ = started_sim()
        state = sim.run_states[1]
        state.gpus.append(state.gpus[0])
        with pytest.raises(SanitizerError, match="double-binds GPU"):
            sim.sanitizer.after_schedule()

    def test_unattached_gpu_claim_detected(self):
        sim, _ = started_sim()
        sim.run_states[1].gpus[1] = sim.cluster.gpus[5]  # free device
        with pytest.raises(SanitizerError, match="not attached"):
            sim.sanitizer.after_schedule()

    def test_wrong_gpu_count_detected(self):
        sim, _ = started_sim()
        lost = sim.run_states[1].gpus.pop()
        lost.detach(1)
        with pytest.raises(SanitizerError, match="requested 2"):
            sim.sanitizer.after_schedule()

    def test_leaked_allocation_detected(self):
        sim, _ = started_sim()
        del sim.run_states[1]  # GPUs still host job 1
        with pytest.raises(SanitizerError, match="leaked allocation"):
            sim.sanitizer.after_schedule()

    def test_resident_cap_breach_detected(self):
        sim, _ = started_sim()
        gpu = sim.cluster.gpus[0]
        gpu._residents[90] = 1.0
        gpu._residents[91] = 1.0
        with pytest.raises(SanitizerError, match=r"\(max 2\)"):
            sim.sanitizer.after_schedule()

    def test_memory_oversubscription_detected(self):
        sim, _ = started_sim()
        gpu = sim.cluster.gpus[0]
        gpu._residents[1] = gpu.memory_mb * 2
        with pytest.raises(SanitizerError, match="memory oversubscribed"):
            sim.sanitizer.after_schedule()


class TestLifecycleInvariants:
    def test_illegal_transition_detected(self):
        sim = fresh_sim()
        sim.jobs[1].status = JobStatus.RUNNING  # SUBMITTED may only -> PENDING
        with pytest.raises(SanitizerError,
                           match="illegal SUBMITTED -> RUNNING transition"):
            sim.sanitizer.after_schedule()

    def test_pending_job_holding_gpus_detected(self):
        # The legal RUNNING -> PENDING move (stop_job) releases the GPUs;
        # flipping the status alone leaves a phantom allocation behind.
        sim, job = started_sim()
        job.status = JobStatus.PENDING
        with pytest.raises(SanitizerError, match="still holds GPUs"):
            sim.sanitizer.after_schedule()

    def test_running_job_without_allocation_detected(self):
        sim, job = started_sim()
        sim.stop_job(job)
        sim.sanitizer.after_schedule()       # legal RUNNING -> PENDING
        job.status = JobStatus.RUNNING       # ...but nothing was started
        with pytest.raises(SanitizerError, match="lost allocation"):
            sim.sanitizer.after_schedule()

    def test_terminal_states_allow_no_exit(self):
        assert ALLOWED_TRANSITIONS[JobStatus.FINISHED] == frozenset()
        assert ALLOWED_TRANSITIONS[JobStatus.FAILED] == frozenset()

    def test_fault_states_modelled(self):
        assert JobStatus.CRASHED in ALLOWED_TRANSITIONS[JobStatus.RUNNING]
        assert ALLOWED_TRANSITIONS[JobStatus.CRASHED] == frozenset(
            {JobStatus.PENDING})


class TestQueueInvariants:
    def test_duplicate_queue_entry_detected(self):
        extra = make_job(2, gpu_num=1)
        sim = fresh_sim(jobs=[make_job(1, gpu_num=2), extra])
        sim.scheduler.queue.extend([extra, extra])
        with pytest.raises(SanitizerError, match="queued twice"):
            sim.sanitizer.after_schedule()

    def test_terminal_job_in_queue_detected(self):
        done = make_job(2, gpu_num=1)
        done.status = JobStatus.FINISHED  # terminal before the snapshot
        sim = fresh_sim(jobs=[make_job(1, gpu_num=2), done])
        sim.scheduler.queue.append(done)
        with pytest.raises(SanitizerError,
                           match="still sits in the pending queue"):
            sim.sanitizer.after_schedule()

    def test_queued_while_executing_detected(self):
        # Reachable only through a compound corruption (the lifecycle check
        # fires first on the full sweep), so exercise the check directly.
        sim, job = started_sim()
        job.status = JobStatus.PENDING
        sim.scheduler.queue.append(job)
        with pytest.raises(SanitizerError, match="both queued and executing"):
            sim.sanitizer._check_queue("test")


class TestFaultFlagInvariants:
    def test_unhealthy_gpu_on_healthy_node_detected(self):
        sim, _ = started_sim()
        sim.cluster.gpus[7].healthy = False
        with pytest.raises(SanitizerError, match="has unhealthy GPUs"):
            sim.sanitizer.after_schedule()

    def test_down_node_with_healthy_gpus_detected(self):
        sim, _ = started_sim()
        sim.cluster.nodes[0].healthy = False
        with pytest.raises(SanitizerError, match="has healthy GPUs"):
            sim.sanitizer.after_schedule()

    def test_failed_gpu_hosting_jobs_detected(self):
        sim, _ = started_sim()
        sim.cluster.nodes[0].healthy = False
        for gpu in sim.cluster.nodes[0].gpus:
            gpu.healthy = False
        with pytest.raises(SanitizerError, match="still hosts jobs"):
            sim.sanitizer.after_schedule()

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_straggler_factor_out_of_range_detected(self, factor):
        sim, _ = started_sim()
        sim.cluster.gpus[7].fault_slow = factor
        with pytest.raises(SanitizerError, match="straggler factor"):
            sim.sanitizer.after_schedule()

    def test_straggler_window_in_range_fine(self):
        sim, _ = started_sim()
        sim.cluster.gpus[7].fault_slow = 0.6
        sim.sanitizer.after_schedule()


class TestZeroOverheadContract:
    def test_sanitizer_absent_by_default(self):
        sim = fresh_sim(sanitize=False)
        assert sim.sanitizer is None

    def test_full_run_stays_clean(self, tiny_spec):
        gen = TraceGenerator(tiny_spec)
        sim = Simulator(gen.build_cluster(), gen.generate(),
                        FIFOScheduler(), sanitize=True)
        result = sim.run()
        assert result.n_jobs == tiny_spec.n_jobs
        assert sim.sanitizer.checks_run > 0

    @pytest.mark.parametrize("name", ["fifo", "tiresias", "lucid"])
    def test_sanitized_run_bit_identical(self, name, tiny_spec):
        def run(sanitize):
            gen = TraceGenerator(tiny_spec)
            cluster = gen.build_cluster()
            history = gen.generate_history()
            return Simulator(cluster, gen.generate(),
                             make_scheduler(name, history),
                             sanitize=sanitize).run()

        plain, checked = run(False), run(True)
        assert plain.summary() == checked.summary()
        assert [r.jct for r in plain.records] == \
            [r.jct for r in checked.records]
        assert [r.preemptions for r in plain.records] == \
            [r.preemptions for r in checked.records]
