"""Unit tests for the serve subsystem's durable building blocks.

Covers the WAL (checksums, torn-tail tolerance, corruption, rotation),
the sqlite store (config, clean flag, snapshots), the bounded inbox
(ordering, backpressure, name reuse), job specs (validation, exact
round-trip), the serve config, and the atomic-write helpers' durability
contract (fsync discipline, verified by monkeypatching ``os.fsync``).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import ioutil
from repro.obs.ioutil import atomic_write_text, tmp_path
from repro.serve import (
    Inbox,
    JobSpecError,
    ServeConfig,
    WalRecord,
    WriteAheadLog,
    job_from_spec,
    job_to_spec,
)
from repro.serve.config import ConfigMismatchError
from repro.serve.inbox import InboxFullError
from repro.serve.store import Store
from repro.serve.wal import (
    WalCorruptionError,
    segment_name,
    segment_tick,
)

SPEC = {
    "name": "resnet50", "user": "alice", "vc": "vc1",
    "gpu_num": 2, "duration": 3600.0,
    "profile": {"gpu_util": 60.0, "gpu_mem_util": 30.0,
                "gpu_mem_mb": 12000.0},
}


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------
class TestWal:
    def test_segment_names_round_trip(self):
        assert segment_name(0) == "wal-00000000.jsonl"
        assert segment_tick(segment_name(123)) == 123
        assert segment_tick("serve.sqlite") is None
        assert segment_tick("wal-1.jsonl") is None  # unpadded: not ours

    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), durable=False)
        wal.open_segment(0, 0)
        wal.append({"kind": "tick", "tick": 1})
        wal.append({"kind": "commit", "tick": 1, "digest": "d1"})
        wal.close()
        records = list(wal.replay_segment(segment_name(0)))
        assert [r.seq for r in records] == [0, 1]
        assert [r.kind for r in records] == ["tick", "commit"]
        assert records[1].rec["digest"] == "d1"

    def test_seq_continues_across_rotation(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), durable=False)
        wal.open_segment(0, 0)
        wal.append({"kind": "tick", "tick": 1})
        wal.open_segment(1, wal.next_seq)  # rotation at snapshot tick 1
        wal.append({"kind": "tick", "tick": 2})
        wal.close()
        assert wal.segments() == [segment_name(0), segment_name(1)]
        (second,) = wal.replay_segment(segment_name(1))
        assert second.seq == 1

    def test_torn_tail_is_tolerated_and_truncated(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), durable=False)
        wal.open_segment(0, 0)
        wal.append({"kind": "tick", "tick": 1})
        wal.close()
        path = tmp_path / "wal" / segment_name(0)
        with open(path, "a") as handle:
            handle.write('{"seq": 1, "crc": 0, "rec"')  # crash mid-append
        records = list(wal.replay_segment(segment_name(0)))
        assert [r.seq for r in records] == [0]
        assert wal.truncate_torn_tail(segment_name(0)) == 1
        assert wal.truncate_torn_tail(segment_name(0)) == 0  # idempotent
        assert [r.seq for r in wal.replay_segment(segment_name(0))] == [0]

    def test_checksum_damage_mid_file_is_corruption(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), durable=False)
        wal.open_segment(0, 0)
        wal.append({"kind": "tick", "tick": 1})
        wal.append({"kind": "commit", "tick": 1, "digest": "d"})
        wal.close()
        path = tmp_path / "wal" / segment_name(0)
        lines = path.read_text().splitlines(keepends=True)
        first = json.loads(lines[0])
        first["crc"] ^= 1  # flip a checksum bit in a NON-trailing record
        path.write_text(json.dumps(first) + "\n" + lines[1])
        with pytest.raises(WalCorruptionError):
            list(wal.replay_segment(segment_name(0)))

    def test_missing_segment_replays_empty(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), durable=False)
        assert list(wal.replay_segment(segment_name(7))) == []
        assert wal.truncate_torn_tail(segment_name(7)) == 0

    def test_append_without_segment_fails(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), durable=False)
        with pytest.raises(RuntimeError):
            wal.append({"kind": "tick"})

    def test_record_decode_rejects_damage(self):
        record = WalRecord(seq=3, rec={"kind": "tick"})
        assert WalRecord.decode(record.encode()) == record
        with pytest.raises(ValueError):
            WalRecord.decode(record.encode().replace("tick", "tock"))


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
class TestStore:
    def test_config_round_trip_and_single_genesis(self, tmp_path):
        config = ServeConfig(trace="venus", scheduler="fifo", jobs=30)
        with Store(str(tmp_path)) as store:
            assert store.config() is None
            store.init_config(config)
            assert store.config() == config
            with pytest.raises(RuntimeError):
                store.init_config(config)
        with Store(str(tmp_path)) as store:  # persists across opens
            assert store.config() == config

    def test_clean_flag_protocol(self, tmp_path):
        with Store(str(tmp_path)) as store:
            assert store.is_clean()  # brand-new store is trusted
            store.mark_dirty()
            assert not store.is_clean()
        with Store(str(tmp_path)) as store:  # SIGKILL leaves dirty behind
            assert not store.is_clean()
            store.mark_clean()
            assert store.is_clean()

    def test_snapshots_latest_wins(self, tmp_path):
        with Store(str(tmp_path)) as store:
            assert store.latest_snapshot() is None
            store.put_snapshot(0, 1, "d0", b"blob0")
            store.put_snapshot(25, 60, "d25", b"blob25")
            assert store.snapshot_ticks() == [0, 25]
            tick, next_seq, digest, blob = store.latest_snapshot()
            assert (tick, next_seq, digest, blob) == (25, 60, "d25",
                                                      b"blob25")

    def test_job_catalog(self, tmp_path):
        with Store(str(tmp_path)) as store:
            store.record_job(2, 1, "admitted", SPEC)
            store.record_job(1, 1, "admitted", SPEC)
            rows = store.jobs()
            assert [row[0] for row in rows] == [1, 2]
            assert rows[0][2] == "admitted"
            assert rows[0][3]["name"] == "resnet50"


# ----------------------------------------------------------------------
# Inbox
# ----------------------------------------------------------------------
class TestInbox:
    def test_submit_poll_in_sorted_order(self, tmp_path):
        inbox = Inbox(str(tmp_path / "inbox"))
        consumed = set()
        names = [inbox.submit(dict(SPEC, name=f"job{i}"), consumed)
                 for i in range(3)]
        assert names == sorted(names)
        items = inbox.poll(consumed, batch=2)
        assert [item.name for item in items] == names[:2]
        assert items[0].spec["name"] == "job0"

    def test_consumed_names_are_skipped(self, tmp_path):
        inbox = Inbox(str(tmp_path / "inbox"))
        consumed = set()
        first = inbox.submit(dict(SPEC), consumed)
        second = inbox.submit(dict(SPEC), consumed)
        consumed.add(first)
        assert inbox.pending(consumed) == [second]

    def test_capacity_backpressure(self, tmp_path):
        inbox = Inbox(str(tmp_path / "inbox"), capacity=2, retry_after=9.0)
        consumed = set()
        inbox.submit(dict(SPEC), consumed)
        inbox.submit(dict(SPEC), consumed)
        with pytest.raises(InboxFullError) as err:
            inbox.submit(dict(SPEC), consumed)
        assert err.value.retry_after == 9.0

    def test_names_never_reused_after_consumption(self, tmp_path):
        """A consumed-and-deleted name must not be reissued: the durable
        consumed-set would silently skip the new spec."""
        inbox = Inbox(str(tmp_path / "inbox"))
        consumed = set()
        name = inbox.submit(dict(SPEC), consumed)
        consumed.add(name)
        inbox.remove([name])  # daemon deletes after journaling
        assert inbox.submit(dict(SPEC), consumed) != name

    def test_unreadable_spec_reported_not_admitted(self, tmp_path):
        inbox = Inbox(str(tmp_path / "inbox"))
        (tmp_path / "inbox" / "job-00000001.json").write_text("{nope")
        (tmp_path / "inbox" / "job-00000002.json").write_text("[1, 2]")
        items = inbox.poll(set(), batch=8)
        assert [item.spec for item in items] == [None, None]
        assert "unreadable" in items[0].error
        assert "object" in items[1].error

    def test_tmp_siblings_invisible(self, tmp_path):
        inbox = Inbox(str(tmp_path / "inbox"))
        (tmp_path / "inbox" / "job-00000001.json.tmp").write_text("{")
        assert inbox.pending(set()) == []


# ----------------------------------------------------------------------
# Job specs
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_round_trip_is_exact(self):
        job = job_from_spec(dict(SPEC, duration=0.1 + 0.2), job_id=7)
        spec = job_to_spec(job)
        again = job_from_spec(json.loads(json.dumps(spec)), job_id=7)
        assert job_to_spec(again) == spec
        assert again.duration == job.duration  # bit-exact float

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda s: s.pop("vc"), "misses required"),
        (lambda s: s.update(gpus=4), "unknown spec fields"),
        (lambda s: s.update(gpu_num=0), "positive integer"),
        (lambda s: s.update(gpu_num=True), "positive integer"),
        (lambda s: s.update(duration=-1.0), "duration"),
        (lambda s: s.update(name=""), "non-empty"),
        (lambda s: s.update(profile={}), "profile misses"),
        (lambda s: s.update(profile="big"), "must be an object"),
    ])
    def test_validation_rejects(self, mutate, fragment):
        spec = json.loads(json.dumps(SPEC))
        mutate(spec)
        with pytest.raises(JobSpecError, match=fragment):
            job_from_spec(spec, job_id=1)


# ----------------------------------------------------------------------
# Serve config
# ----------------------------------------------------------------------
class TestServeConfig:
    def test_json_round_trip(self):
        config = ServeConfig(trace="saturn", scheduler="qssf", jobs=40,
                             seed=3, faults="node_mtbf=1e5", batch=4)
        assert ServeConfig.from_json(config.to_json()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown serve config"):
            ServeConfig.from_json('{"trace": "venus", "spice": 1}')

    def test_compatible_check_names_the_diff(self):
        stored = ServeConfig(scheduler="lucid")
        with pytest.raises(ConfigMismatchError, match="scheduler"):
            ServeConfig(scheduler="fifo").check_compatible(stored)
        ServeConfig().check_compatible(ServeConfig())  # no-op when equal

    def test_batching_bounds(self):
        with pytest.raises(ValueError):
            ServeConfig(batch=0)
        with pytest.raises(ValueError):
            ServeConfig(events_per_tick=0)


# ----------------------------------------------------------------------
# Atomic-write durability
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_no_tmp_left_and_parents_created(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.json"
        atomic_write_text(str(target), "payload")
        assert target.read_text() == "payload"
        assert not os.path.exists(ioutil.tmp_path(str(target)))

    def test_durable_fsyncs_file_and_directory(self, tmp_path,
                                               monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd),
                                                     real_fsync(fd))[1])
        target = str(tmp_path / "state.json")
        atomic_write_text(target, "x", durable=True)
        # One fsync for the tmp file's data, one for the directory entry.
        assert len(synced) == 2

    def test_default_write_skips_fsync(self, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "fsync", lambda fd: pytest.fail(
            "non-durable write must not fsync"))
        atomic_write_text(str(tmp_path / "report.html"), "x")

    def test_tmp_path_is_a_sibling(self):
        assert tmp_path("/d/out.json") == "/d/out.json.tmp"
