"""Tests for GPU / Node / VirtualCluster / Cluster."""

import pytest

from repro.cluster import (
    Cluster,
    GPU,
    GPUS_PER_NODE,
    MAX_RESIDENTS,
    Node,
    make_vc_names,
)


class TestGPU:
    def test_initial_state(self):
        gpu = GPU(0, 0)
        assert gpu.is_free
        assert not gpu.is_shared
        assert gpu.residents == []
        assert gpu.memory_free_mb == gpu.memory_mb

    def test_attach_detach(self):
        gpu = GPU(0, 0)
        gpu.attach(1, 1000)
        assert gpu.hosts(1)
        assert not gpu.is_free
        assert gpu.memory_used_mb == 1000
        gpu.detach(1)
        assert gpu.is_free

    def test_two_residents_max(self):
        gpu = GPU(0, 0)
        gpu.attach(1, 100)
        gpu.attach(2, 100)
        assert gpu.is_shared
        assert gpu.n_residents == MAX_RESIDENTS
        with pytest.raises(RuntimeError, match="full"):
            gpu.attach(3, 100)

    def test_oom_rejected(self):
        gpu = GPU(0, 0, memory_mb=1000)
        gpu.attach(1, 800)
        with pytest.raises(RuntimeError, match="OOM"):
            gpu.attach(2, 300)

    def test_double_attach_rejected(self):
        gpu = GPU(0, 0)
        gpu.attach(1, 100)
        with pytest.raises(RuntimeError, match="already"):
            gpu.attach(1, 100)

    def test_detach_missing_rejected(self):
        gpu = GPU(0, 0)
        with pytest.raises(RuntimeError, match="not resident"):
            gpu.detach(42)

    def test_can_host(self):
        gpu = GPU(0, 0, memory_mb=1000)
        assert gpu.can_host(500)
        gpu.attach(1, 700)
        assert gpu.can_host(300)
        assert not gpu.can_host(400)


class TestNode:
    def test_default_shape(self):
        node = Node(0, "vc1")
        assert node.n_gpus == GPUS_PER_NODE
        assert node.is_empty
        assert node.n_free_gpus == GPUS_PER_NODE

    def test_gpu_ids_contiguous(self):
        node = Node(3, "vc1", first_gpu_id=24)
        assert [g.gpu_id for g in node.gpus] == list(range(24, 32))

    def test_free_and_busy_split(self):
        node = Node(0, "vc1")
        node.gpus[0].attach(1, 100)
        node.gpus[1].attach(1, 100)
        assert node.n_free_gpus == 6
        assert len(node.busy_gpus) == 2
        assert not node.is_empty

    def test_shareable_gpus(self):
        node = Node(0, "vc1")
        node.gpus[0].attach(1, 100)
        shareable = node.shareable_gpus(memory_mb=500)
        assert shareable == [node.gpus[0]]


class TestCluster:
    def test_construction(self):
        cluster = Cluster({"a": 2, "b": 3})
        assert cluster.n_gpus == 40
        assert len(cluster.nodes) == 5
        assert cluster.vc("a").n_gpus == 16
        assert cluster.vc("b").n_gpus == 24

    def test_gpu_lookup(self):
        cluster = Cluster({"a": 2})
        for gpu_id in range(cluster.n_gpus):
            assert cluster.gpu(gpu_id).gpu_id == gpu_id

    def test_unknown_vc_raises(self):
        cluster = Cluster({"a": 1})
        with pytest.raises(KeyError, match="unknown VC"):
            cluster.vc("zzz")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster({})
        with pytest.raises(ValueError):
            Cluster({"a": 0})

    def test_homogeneous(self):
        cluster = Cluster.homogeneous(4)
        assert cluster.n_gpus == 32
        assert list(cluster.vcs) == ["default"]

    def test_occupancy_fractions(self):
        cluster = Cluster.homogeneous(1)
        assert cluster.active_gpu_fraction() == 0.0
        cluster.gpu(0).attach(1, 100)
        assert cluster.active_gpu_fraction() == pytest.approx(1 / 8)
        cluster.gpu(0).attach(2, 100)
        assert cluster.shared_gpu_fraction() == pytest.approx(1 / 8)
        assert cluster.memory_used_fraction() > 0

    def test_nodes_of(self):
        cluster = Cluster({"a": 2, "b": 1})
        assert len(cluster.nodes_of("a")) == 2
        assert len(cluster.nodes_of(None)) == 3


def test_make_vc_names():
    names = make_vc_names(3)
    assert names == ["vc01", "vc02", "vc03"]
    assert len(make_vc_names(120)) == 120
