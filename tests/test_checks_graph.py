"""Tests for the whole-program index (repro.checks.graph).

Synthetic mini-packages exercise import classification, cycle
detection, call resolution (including attribute calls through
constructor-inferred types) and loop-carried reachability; a
hypothesis property pins the index's independence from file ordering.
"""

from __future__ import annotations

import os
import textwrap

from hypothesis import given, settings, strategies as st

from repro.checks import build_index
from repro.checks.graph import MODULE_SCOPE


def write_pkg(root, files):
    """Materialize ``{relpath: source}`` as a package under ``root``."""
    pkg = os.path.join(str(root), "pkg")
    paths = {}
    for rel, source in files.items():
        full = os.path.join(pkg, rel)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as handle:
            handle.write(textwrap.dedent(source))
        paths[rel] = full
    for sub in {os.path.dirname(rel) for rel in files} | {""}:
        init = os.path.join(pkg, sub, "__init__.py")
        if not os.path.exists(init):
            os.makedirs(os.path.dirname(init), exist_ok=True)
            with open(init, "w", encoding="utf-8"):
                pass
    return pkg


class TestImportGraph:
    def test_edge_classification(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "a.py": """\
                from typing import TYPE_CHECKING
                import pkg.b
                if TYPE_CHECKING:
                    import pkg.c

                def f():
                    import pkg.d
            """,
            "b.py": "",
            "c.py": "",
            "d.py": "",
        })
        index = build_index(pkg)
        strict = index.import_graph()
        assert strict["pkg.a"] == {"pkg.b"}
        lazy = index.import_graph(include_lazy=True)
        assert lazy["pkg.a"] == {"pkg.b", "pkg.d"}
        full = index.import_graph(include_lazy=True,
                                  include_type_checking=True)
        assert full["pkg.a"] == {"pkg.b", "pkg.c", "pkg.d"}

    def test_from_import_resolves_to_submodule(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "sub/mod.py": "X = 1\n",
            "user.py": "from pkg.sub import mod\n",
        })
        index = build_index(pkg)
        assert index.import_graph()["pkg.user"] == {"pkg.sub.mod"}

    def test_cycle_detection(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "a.py": "import pkg.b\n",
            "b.py": "import pkg.a\n",
            "c.py": "import pkg.a\n",
        })
        cycles = build_index(pkg).find_cycles()
        assert cycles == [["pkg.a", "pkg.b"]]

    def test_acyclic_tree_has_no_cycles(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "a.py": "import pkg.b\n",
            "b.py": "import pkg.c\n",
            "c.py": "",
        })
        assert build_index(pkg).find_cycles() == []

    def test_lazy_edge_breaks_cycle(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "a.py": "import pkg.b\n",
            "b.py": "def f():\n    import pkg.a\n",
        })
        index = build_index(pkg)
        assert index.find_cycles() == []
        assert index.import_graph(include_lazy=True)["pkg.b"] == {"pkg.a"}

    def test_syntax_error_is_recorded_not_fatal(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "ok.py": "def f():\n    return 1\n",
            "bad.py": "def broken(:\n",
        })
        index = build_index(pkg)
        assert index.modules["pkg.bad"].error is not None
        line, _col, message = index.modules["pkg.bad"].error
        assert line == 1 and message
        # The good module is still fully indexed.
        assert "pkg.ok.f" in index.functions


class TestCallGraph:
    def test_direct_and_imported_calls(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "lib.py": """\
                def helper():
                    return 1

                def wrapper():
                    return helper()
            """,
            "user.py": """\
                from pkg.lib import wrapper

                def top():
                    return wrapper()
            """,
        })
        index = build_index(pkg)
        reach = index.reachable(["pkg.user.top"])
        assert {"pkg.user.top", "pkg.lib.wrapper",
                "pkg.lib.helper"} <= reach

    def test_attr_call_through_constructor_type(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "engine.py": """\
                class Engine:
                    def step(self):
                        return 1
            """,
            "driver.py": """\
                from pkg.engine import Engine

                class Driver:
                    def __init__(self):
                        self.engine = Engine()

                    def run(self):
                        return self.engine.step()
            """,
        })
        index = build_index(pkg)
        reach = index.reachable(["pkg.driver.Driver.run"])
        assert "pkg.engine.Engine.step" in reach

    def test_loop_reachability_carries_through_helpers(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "hot.py": """\
                def leaf():
                    return 1

                def looped():
                    return leaf()

                def straight():
                    return 2

                def root():
                    for _ in range(3):
                        looped()
                    return straight()
            """,
        })
        index = build_index(pkg)
        hot = index.loop_reachable(["pkg.hot.root"])
        assert hot["pkg.hot.root"] is False
        assert hot["pkg.hot.looped"] is True
        assert hot["pkg.hot.leaf"] is True      # carried through looped()
        assert hot["pkg.hot.straight"] is False

    def test_comprehension_first_iter_is_not_in_loop(self, tmp_path):
        # [f(x) for x in g()]: g runs once (outside the implicit loop),
        # f runs per element.
        pkg = write_pkg(tmp_path, {
            "comp.py": """\
                def g():
                    return [1]

                def f(x):
                    return x

                def root():
                    return [f(x) for x in g()]
            """,
        })
        hot = build_index(pkg).loop_reachable(["pkg.comp.root"])
        assert hot["pkg.comp.g"] is False
        assert hot["pkg.comp.f"] is True


class TestOrderStability:
    FILES = {
        "a.py": """\
            import pkg.b

            def fa():
                return pkg.b.fb()
        """,
        "b.py": """\
            def fb():
                return 1

            def unused():
                for _ in range(2):
                    fb()
        """,
        "c.py": """\
            from pkg.a import fa

            class C:
                def m(self):
                    return fa()
        """,
        "d.py": "from pkg import c\n",
    }

    @staticmethod
    def snapshot(index):
        """Canonical, order-insensitive rendering of the whole index."""
        imports = {m: sorted(dests) for m, dests in
                   index.import_graph(include_lazy=True,
                                      include_type_checking=True).items()}
        edges = {caller: [(callee, site.line, site.col)
                          for callee, site in pairs]
                 for caller, pairs in index.call_edges().items()}
        return (sorted(index.modules), imports, sorted(index.functions),
                sorted(index.classes), edges, index.find_cycles())

    @given(perm=st.permutations(sorted(FILES)))
    @settings(max_examples=20, deadline=None)
    def test_index_is_stable_under_file_ordering(self, perm, tmp_path_factory):
        root = tmp_path_factory.mktemp("order")
        pkg = write_pkg(root, self.FILES)
        baseline = self.snapshot(build_index(pkg))
        shuffled = [os.path.join(pkg, name) for name in perm]
        shuffled.append(os.path.join(pkg, "__init__.py"))
        assert self.snapshot(build_index(pkg, files=shuffled)) == baseline

    def test_module_scope_constant_exported(self):
        # Rule packs key module-level pseudo-functions off this marker.
        assert isinstance(MODULE_SCOPE, str) and MODULE_SCOPE
