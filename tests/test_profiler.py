"""Tests for the Non-intrusive Job Profiler (§3.2, Algorithm 1)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core.profiler import NonIntrusiveProfiler
from repro.schedulers.base import Scheduler
from repro.sim import Simulator

from conftest import make_job


class ProfilerOnlyScheduler(Scheduler):
    """Routes everything through a profiler; evicted jobs are dropped into
    an ordinary greedy exclusive queue."""

    def __init__(self, profiler):
        super().__init__()
        self.profiler = profiler
        self.evicted = []

    def on_job_submit(self, job, now):
        if self.profiler.wants(job):
            self.profiler.enqueue(job)
        else:
            self.queue.append(job)

    def on_time_limit(self, job, now):
        job.measured_profile = self.profiler.measure(job)
        self.engine.stop_job(job)
        job.progress = 0.0
        self.evicted.append(job.job_id)
        self.queue.append(job)

    def schedule(self, now):
        self.profiler.allocate(self.engine)
        for job in list(self.queue):
            if self.try_place_exclusive(job):
                self.queue.remove(job)


def run(jobs, profiler):
    cluster = Cluster.homogeneous(2, vc_name="vc1")
    scheduler = ProfilerOnlyScheduler(profiler)
    result = Simulator(cluster, jobs, scheduler).run()
    return result, scheduler


class TestRouting:
    def test_scale_limit(self, rng):
        profiler = NonIntrusiveProfiler(rng=rng, n_prof=8)
        assert profiler.wants(make_job(1, gpu_num=1))
        assert profiler.wants(make_job(2, gpu_num=8))
        assert not profiler.wants(make_job(3, gpu_num=16))

    def test_n_prof_bounded_by_node(self):
        with pytest.raises(ValueError):
            NonIntrusiveProfiler(n_prof=16)
        with pytest.raises(ValueError):
            NonIntrusiveProfiler(base_nodes=0)


class TestFiltering:
    def test_short_jobs_finish_in_profiler(self, rng):
        profiler = NonIntrusiveProfiler(base_nodes=1, t_prof=200.0, rng=rng)
        jobs = [make_job(i, duration=50.0, submit_time=0.0) for i in range(1, 5)]
        result, sched = run(jobs, profiler)
        assert result.profiler_finish_rate() == 1.0
        assert sched.evicted == []

    def test_long_jobs_evicted_and_measured(self, rng):
        profiler = NonIntrusiveProfiler(base_nodes=1, t_prof=100.0, rng=rng)
        jobs = [make_job(1, duration=1000.0)]
        result, sched = run(jobs, profiler)
        assert sched.evicted == [1]
        record = result.records[0]
        assert not record.finished_in_profiler
        # Restarted after 100 s of profiling: JCT ~ 1100 s.
        assert record.jct == pytest.approx(1100.0, abs=5.0)
        assert record.profile is not None

    def test_measurement_noisy_but_close(self, rng):
        profiler = NonIntrusiveProfiler(rng=rng)
        job = make_job(1, gpu_util=50.0)
        measured = profiler.measure(job)
        assert measured.gpu_util == pytest.approx(50.0, rel=0.3)
        assert measured.gpu_util != 50.0


class TestSpaceAware:
    def test_least_gpu_first(self, rng):
        """Algorithm 1: small jobs profile ahead of the big blocked job."""
        profiler = NonIntrusiveProfiler(base_nodes=1, t_prof=300.0,
                                        space_aware=True, rng=rng)
        jobs = [make_job(1, duration=50.0, gpu_num=8, submit_time=0.0),
                make_job(2, duration=50.0, gpu_num=8, submit_time=1.0)] + [
            make_job(10 + i, duration=50.0, gpu_num=1, submit_time=2.0)
            for i in range(8)
        ]
        result, _ = run(jobs, profiler)
        small = [r for r in result.records if r.gpu_num == 1]
        big = [r for r in result.records if r.gpu_num == 8]
        # Smalls profile in the first batch alongside one 8-GPU job at most;
        # the second 8-GPU job waits behind them.
        assert max(r.queue_delay for r in small) <= min(60.0, max(
            r.queue_delay for r in big) + 60.0)

    def test_naive_fifo_blocks_small_jobs(self, rng):
        """Without space-awareness, a big head job blocks the 1-GPU queue."""
        def build(space_aware):
            return NonIntrusiveProfiler(base_nodes=1, t_prof=300.0,
                                        space_aware=space_aware,
                                        rng=np.random.default_rng(0))

        jobs_spec = (
            [make_job(1, duration=299.0, gpu_num=8, submit_time=0.0),
             make_job(2, duration=299.0, gpu_num=8, submit_time=1.0)]
            + [make_job(10 + i, duration=30.0, gpu_num=1, submit_time=2.0)
               for i in range(8)]
        )

        def avg_small_queue(space_aware):
            jobs = [make_job(j.job_id, duration=j.duration, gpu_num=j.gpu_num,
                             submit_time=j.submit_time) for j in jobs_spec]
            result, _ = run(jobs, build(space_aware))
            return np.mean([r.queue_delay for r in result.records
                            if r.gpu_num == 1])

        assert avg_small_queue(True) < avg_small_queue(False)


class TestTimeAwareScaling:
    def test_scale_up_and_down(self, rng):
        profiler = NonIntrusiveProfiler(base_nodes=2, max_borrowed_nodes=2,
                                        t_prof=200.0, rng=rng)
        assert profiler.capacity_gpus == 16
        profiler.scale_up()
        assert profiler.capacity_gpus == 32
        assert profiler.t_prof == 100.0
        assert profiler.scaled_up
        profiler.scale_down()
        assert profiler.capacity_gpus == 16
        assert profiler.t_prof == 200.0

    def test_scale_down_keeps_busy_nodes(self, rng):
        profiler = NonIntrusiveProfiler(base_nodes=1, max_borrowed_nodes=1,
                                        rng=rng)
        profiler.scale_up()
        # Occupy a GPU on the borrowed node.
        profiler.cluster.nodes[1].gpus[0].attach(7, 100.0)
        profiler.scale_down()
        assert profiler.active_nodes == 2  # cannot shed the busy node yet

    def test_pending_demand(self, rng):
        profiler = NonIntrusiveProfiler(rng=rng)
        profiler.enqueue(make_job(1, gpu_num=2))
        profiler.enqueue(make_job(2, gpu_num=4))
        assert profiler.pending_demand_gpus() == 6
