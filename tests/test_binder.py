"""Tests for the Affine-Jobpair Binder (§3.3)."""

import numpy as np
import pytest

from repro.cluster import Cluster, find_consolidated
from repro.core.binder import AffineJobpairBinder, PackingMode
from repro.schedulers.base import Scheduler
from repro.sim import Simulator
from repro.workloads import GPU_MEMORY_MB

from conftest import make_job


class _Harness(Scheduler):
    """Starts jobs exclusively as told; exposes the engine for the binder."""

    def schedule(self, now):
        pass


def engine_with_running(jobs, extra=()):
    """Build an engine with ``jobs`` started exclusively.

    ``extra`` jobs are registered with the engine (so they may be packed
    later by a test) but not started.
    """
    from repro.workloads.job import JobStatus

    cluster = Cluster.homogeneous(4, vc_name="vc1")
    sim = Simulator(cluster, list(jobs) + list(extra), _Harness())
    sim.scheduler.attach(sim)
    for job in jobs:
        job.status = JobStatus.PENDING
        gpus = find_consolidated(cluster, job.gpu_num, vc=job.vc)
        sim.start_job(job, gpus)
    return sim


def const_estimate(value=3600.0):
    return lambda job: value


@pytest.fixture
def binder():
    return AffineJobpairBinder()


class TestGSSBudget:
    def test_tiny_plus_jumbo_allowed(self, binder):
        mate = make_job(1, gpu_util=90.0)
        mate.sharing_score = 2
        sim = engine_with_running([mate])
        job = make_job(2, gpu_util=10.0)
        job.sharing_score = 0
        assert binder.find_mate(sim, job, const_estimate()) is mate

    def test_medium_plus_jumbo_blocked(self, binder):
        mate = make_job(1, gpu_util=90.0)
        mate.sharing_score = 2
        sim = engine_with_running([mate])
        job = make_job(2, gpu_util=50.0)
        job.sharing_score = 1
        assert binder.find_mate(sim, job, const_estimate()) is None

    def test_apathetic_mode_tightens_budget(self, binder):
        mate = make_job(1, gpu_util=50.0)
        mate.sharing_score = 1
        sim = engine_with_running([mate])
        job = make_job(2, gpu_util=50.0)
        job.sharing_score = 1
        # M+M is allowed in Default mode (sum == GSS capacity 2) ...
        binder.set_mode(PackingMode.DEFAULT)
        assert binder.find_mate(sim, job, const_estimate()) is mate
        # ... but not in Apathetic mode (capacity 1).
        binder.set_mode(PackingMode.APATHETIC)
        assert binder.find_mate(sim, job, const_estimate()) is None

    def test_disabled_mode(self, binder):
        mate = make_job(1, gpu_util=10.0)
        mate.sharing_score = 0
        sim = engine_with_running([mate])
        job = make_job(2, gpu_util=10.0)
        job.sharing_score = 0
        binder.set_mode(PackingMode.DISABLED)
        assert binder.find_mate(sim, job, const_estimate()) is None


class TestPackingRules:
    def test_rule2_different_gpu_demand_blocked(self, binder):
        mate = make_job(1, gpu_num=2, gpu_util=10.0)
        mate.sharing_score = 0
        sim = engine_with_running([mate])
        job = make_job(2, gpu_num=1, gpu_util=10.0)
        job.sharing_score = 0
        assert binder.find_mate(sim, job, const_estimate()) is None

    def test_rule3_no_third_resident(self, binder):
        mate = make_job(1, gpu_util=5.0)
        mate.sharing_score = 0
        first = make_job(2, gpu_util=5.0)
        first.sharing_score = 0
        sim = engine_with_running([mate], extra=[first])
        sim.start_job(first, sim.gpus_of(mate))  # pack a pair
        job = make_job(3, gpu_util=5.0)
        job.sharing_score = 0
        assert binder.find_mate(sim, job, const_estimate()) is None

    def test_rule1_memory_limit(self, binder):
        mate = make_job(1, gpu_util=10.0, mem_mb=GPU_MEMORY_MB * 0.7)
        mate.sharing_score = 0
        sim = engine_with_running([mate])
        job = make_job(2, gpu_util=10.0, mem_mb=GPU_MEMORY_MB * 0.5)
        job.sharing_score = 0
        assert binder.find_mate(sim, job, const_estimate()) is None

    def test_rule5_distributed_not_packed(self, binder):
        mate = make_job(1, gpu_num=16, gpu_util=10.0)
        mate.sharing_score = 0
        sim = engine_with_running([mate])
        job = make_job(2, gpu_num=16, gpu_util=10.0)
        job.sharing_score = 0
        assert binder.find_mate(sim, job, const_estimate()) is None

    def test_unprofiled_job_not_packed(self, binder):
        mate = make_job(1, gpu_util=10.0)
        mate.sharing_score = 0
        sim = engine_with_running([mate])
        job = make_job(2, gpu_util=10.0)
        job.sharing_score = None
        assert binder.find_mate(sim, job, const_estimate()) is None

    def test_vc_isolation(self, binder):
        mate = make_job(1, gpu_util=10.0, vc="vc1")
        mate.sharing_score = 0
        sim = engine_with_running([mate])
        job = make_job(2, gpu_util=10.0, vc="vc2")
        job.sharing_score = 0
        assert binder.find_mate(sim, job, const_estimate()) is None


class TestTimeAwareness:
    def test_nearly_finished_mate_rejected(self, binder):
        mate = make_job(1, gpu_util=10.0)
        mate.sharing_score = 0
        sim = engine_with_running([mate])
        job = make_job(2, gpu_util=10.0)
        job.sharing_score = 0
        estimates = {1: 60.0, 2: 3600.0}  # mate almost done
        assert binder.find_mate(sim, job,
                                lambda j: estimates[j.job_id]) is None

    def test_short_job_rides_long_mate(self, binder):
        """A short job packing onto a long-running light mate is exactly
        the profitable case Indolent Packing wants (no imbalance veto)."""
        mate = make_job(1, gpu_util=10.0)
        mate.sharing_score = 0
        sim = engine_with_running([mate])
        job = make_job(2, gpu_util=10.0)
        job.sharing_score = 0
        estimates = {1: 100 * 3600.0, 2: 120.0}
        assert binder.find_mate(sim, job,
                                lambda j: estimates[j.job_id]) is mate


class TestMateSelection:
    def test_prefers_lowest_interference_mate(self, binder):
        tiny = make_job(1, gpu_util=8.0)
        tiny.sharing_score = 0
        medium = make_job(2, gpu_util=50.0)
        medium.sharing_score = 1
        sim = engine_with_running([tiny, medium])
        job = make_job(3, gpu_util=30.0)
        job.sharing_score = 1
        assert binder.find_mate(sim, job, const_estimate()) is tiny

    def test_pass_index_consistency(self, binder):
        mate = make_job(1, gpu_util=10.0)
        mate.sharing_score = 0
        job = make_job(2, gpu_util=10.0)
        job.sharing_score = 0
        sim = engine_with_running([mate], extra=[job])
        binder.begin_pass(sim)
        assert binder.find_mate(sim, job, const_estimate()) is mate
        # After the mate gets packed, the stale index entry is re-checked.
        sim.start_job(job, sim.gpus_of(mate))
        other = make_job(3, gpu_util=10.0)
        other.sharing_score = 0
        assert binder.find_mate(sim, other, const_estimate()) is None
        binder.end_pass()


class TestDynamicStrategy:
    def test_mode_transitions(self, binder):
        assert binder.update_mode(0.1, 0.1, queue_pressure=0) \
            is PackingMode.DISABLED
        assert binder.update_mode(0.5, 0.4, queue_pressure=2) \
            is PackingMode.APATHETIC
        assert binder.update_mode(1.2, 1.5, queue_pressure=30) \
            is PackingMode.DEFAULT

    def test_burst_forecast_keeps_sharing_on(self, binder):
        """No queue now, but a burst is coming: stay ready to pack."""
        mode = binder.update_mode(0.2, 2.0, queue_pressure=0)
        assert mode is not PackingMode.DISABLED

    def test_validation(self):
        with pytest.raises(ValueError):
            AffineJobpairBinder(gss_capacity=3)


class TestInstability:
    def test_unstable_pairs_detected(self, binder, rng):
        a = make_job(1, gpu_util=10.0)
        a.sharing_score = 0
        b = make_job(2, gpu_util=10.0)
        b.sharing_score = 0
        sim = engine_with_running([a], extra=[b])
        sim.start_job(b, sim.gpus_of(a))
        evicted = binder.unstable_pairs(sim, rng, instability_rate=1.0)
        assert [j.job_id for j in evicted] == [2]  # later arrival evicted

    def test_zero_rate_no_evictions(self, binder, rng):
        a = make_job(1, gpu_util=10.0)
        sim = engine_with_running([a])
        assert binder.unstable_pairs(sim, rng, instability_rate=0.0) == []
