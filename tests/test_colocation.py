"""Tests for the colocation interference model (Figures 2, 3, 5 basis)."""

import numpy as np
import pytest

from repro.workloads.colocation import (
    InterferenceModel,
    average_colocation_speed,
    fitted_curve,
    measure_all_pairs,
)
from repro.workloads.model_zoo import (
    ResourceProfile,
    WorkloadConfig,
    get_profile,
)


@pytest.fixture(scope="module")
def model():
    return InterferenceModel()


def profile(util, mem_util=20.0, mem=2000.0, amp=False):
    return ResourceProfile(util, mem_util, mem, amp)


class TestFittedCurve:
    def test_no_interference_below_knee(self):
        assert fitted_curve(0) == 1.0
        assert fitted_curve(60) == 1.0

    def test_paper_anchor_at_100(self):
        """At 100% accumulated utilization the average speed is ~0.92."""
        assert fitted_curve(100) == pytest.approx(0.92, abs=0.02)

    def test_paper_anchor_at_200(self):
        assert fitted_curve(200) == pytest.approx(0.60, abs=0.03)

    def test_monotone_decreasing(self):
        xs = np.linspace(0, 200, 100)
        ys = [fitted_curve(x) for x in xs]
        assert all(a >= b for a, b in zip(ys, ys[1:]))


class TestPairSpeeds:
    def test_light_pair_no_degradation(self, model):
        speeds = model.pair_speeds(profile(15), profile(10))
        assert speeds.first > 0.92
        assert speeds.second > 0.92

    def test_heavy_pair_degrades(self, model):
        speeds = model.pair_speeds(profile(90, 60), profile(85, 55))
        assert speeds.average < 0.75

    def test_lighter_job_suffers_more(self, model):
        """Figure 3a: ResNet-18 (light) loses more than DCGAN (heavy)."""
        light = profile(45, 25)
        heavy = profile(85, 60)
        speeds = model.pair_speeds(light, heavy)
        assert speeds.first <= speeds.second

    def test_deterministic_per_pair(self, model):
        a, b = profile(50), profile(60)
        s1 = model.pair_speeds(a, b, pair_key=("x", "y"))
        s2 = model.pair_speeds(a, b, pair_key=("x", "y"))
        assert s1 == s2

    def test_pair_key_order_invariant_noise(self, model):
        a, b = profile(50), profile(50)
        s1 = model.pair_speeds(a, b, pair_key=("x", "y"))
        s2 = model.pair_speeds(a, b, pair_key=("y", "x"))
        assert s1.average == pytest.approx(s2.average)

    def test_speeds_bounded(self, model):
        for ua in (5, 40, 95):
            for ub in (5, 40, 95):
                s = model.pair_speeds(profile(ua, ua / 2), profile(ub, ub / 2))
                assert 0.2 <= s.first <= 1.0
                assert 0.2 <= s.second <= 1.0

    def test_amp_relieves_interference(self, model):
        fp32 = model.pair_speeds(profile(70, 40), profile(70, 40))
        amp = model.pair_speeds(profile(70, 40, amp=True),
                                profile(70, 40, amp=True))
        assert amp.average >= fp32.average


class TestKWayPacking:
    def test_three_way_worse_than_two_way(self, model):
        """Packing over two jobs suffers acute degradation (§2.3)."""
        p = profile(35, 20)
        two = model.k_way_speed([p, p])
        three = model.k_way_speed([p, p, p])
        assert three < two

    def test_single_job_full_speed(self, model):
        assert model.k_way_speed([profile(90)]) == 1.0


class TestMemoryFeasibility:
    def test_oom_detected(self, model):
        a = profile(50, mem=15_000)
        b = profile(50, mem=14_000)
        assert not model.memory_fits((a, b))

    def test_fitting_pair(self, model):
        assert model.memory_fits((profile(50, mem=8_000),
                                  profile(50, mem=8_000)))


class TestCharacterization:
    def test_measure_all_pairs_covers_feasible_space(self, model):
        measurements = measure_all_pairs(model)
        assert len(measurements) > 1000  # dense Table-1 pair coverage

    def test_figure2a_shape(self, model):
        """Low-accumulated-util pairs retain >= 0.8x speed on average."""
        measurements = measure_all_pairs(model)
        utils = np.array([m.accumulated_util for m in measurements])
        speeds = np.array([m.average_speed for m in measurements])
        low = speeds[utils <= 100]
        high = speeds[utils >= 160]
        assert low.mean() > 0.9
        assert high.mean() < low.mean()

    def test_average_speed_rankings(self, model):
        """PointNet packs near-free; ResNet-50 at large batch does not."""
        pointnet = average_colocation_speed(
            model, WorkloadConfig("PointNet", 64, False))
        resnet50 = average_colocation_speed(
            model, WorkloadConfig("ResNet-50", 128, False))
        assert pointnet > 0.93
        assert resnet50 < pointnet
