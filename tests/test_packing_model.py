"""Tests for the Packing Analyze Model (§3.5.1, Figure 6)."""

import numpy as np
import pytest

from repro.core.packing_model import (
    CLASS_NAMES,
    SS_JUMBO,
    SS_MEDIUM,
    SS_TINY,
    PackingAnalyzeModel,
    build_colocation_dataset,
    label_for_speed,
)
from repro.workloads import InterferenceModel, ResourceProfile


@pytest.fixture(scope="module")
def fitted():
    return PackingAnalyzeModel().fit(InterferenceModel())


class TestLabeling:
    def test_thresholds(self):
        assert label_for_speed(0.97, 0.95, 0.85) == SS_TINY
        assert label_for_speed(0.95, 0.95, 0.85) == SS_TINY
        assert label_for_speed(0.90, 0.95, 0.85) == SS_MEDIUM
        assert label_for_speed(0.80, 0.95, 0.85) == SS_JUMBO

    def test_dataset_covers_all_classes(self, interference):
        X, y, configs = build_colocation_dataset(interference)
        assert X.shape[1] == 4
        assert set(np.unique(y)) == {SS_TINY, SS_MEDIUM, SS_JUMBO}
        # n_replicas noisy rows per configuration
        assert len(y) == len(X)
        assert len(y) % len(configs) == 0


class TestModel:
    def test_training_accuracy(self, fitted):
        """DT achieves high accuracy on this task (paper reports 94.1%)."""
        assert fitted.train_accuracy_ > 0.85

    def test_rl_job_is_tiny(self, fitted):
        ppo = ResourceProfile(9.0, 4.0, 900.0, False)
        assert fitted.sharing_score(ppo) == SS_TINY

    def test_imagenet_resnet_is_jumbo(self, fitted):
        heavy = ResourceProfile(95.0, 70.0, 18_000.0, False)
        assert fitted.sharing_score(heavy) == SS_JUMBO

    def test_scores_monotone_in_utilization(self, fitted):
        scores = [fitted.sharing_score(
            ResourceProfile(u, u * 0.65, 3000.0 + u * 100.0, False))
                  for u in (10.0, 50.0, 95.0)]
        assert scores[0] <= scores[1] <= scores[2]
        assert scores[0] == SS_TINY
        assert scores[2] == SS_JUMBO

    def test_validation(self):
        with pytest.raises(ValueError):
            PackingAnalyzeModel(tiny_threshold=0.8, medium_threshold=0.9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PackingAnalyzeModel().sharing_score(
                ResourceProfile(10, 10, 100, False))


class TestInterpretation:
    def test_tree_text_mentions_gpu_util(self, fitted):
        text = fitted.explain_text()
        assert "gpu_util" in text
        assert any(name in text for name in CLASS_NAMES)

    def test_gpu_util_is_dominant_feature(self, fitted):
        """Figure 6: U_G affects colocation behaviour most."""
        importances = fitted.feature_importances()
        assert importances[0][0] in ("gpu_util", "gpu_mem_util")
        assert dict(importances)["gpu_util"] > 0.3

    def test_decision_path_readable(self, fitted):
        path = fitted.decision_path(ResourceProfile(50.0, 30.0, 4000.0, False))
        assert path
        assert all(("<=" in step or ">" in step) for step in path)

    def test_pruned_tree_is_compact(self, fitted):
        assert fitted.tree_.n_leaves_ <= 20
