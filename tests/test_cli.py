"""Tests for the command-line interface."""

import csv
import io

import pytest

from repro.cli import build_parser, main
from repro.traces import TraceGenerator, VENUS
from repro.traces.io import write_native_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scheduler == "lucid"
        assert args.trace == "venus"

    def test_bad_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scheduler", "magic"])


class TestSimulate:
    def test_simulate_runs(self, capsys):
        code = main(["simulate", "--trace", "venus", "--jobs", "80",
                     "--scheduler", "fifo", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "avg JCT" in out
        assert "fifo" in out

    def test_export(self, tmp_path, capsys):
        target = tmp_path / "records.csv"
        code = main(["simulate", "--trace", "venus", "--jobs", "60",
                     "--scheduler", "sjf", "--export", str(target)])
        assert code == 0
        with open(target) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 60
        assert {"job_id", "jct", "queue_delay"} <= set(rows[0])

    def test_csv_trace_input(self, tmp_path, capsys):
        jobs = TraceGenerator(VENUS.with_jobs(120)).generate()
        path = tmp_path / "trace.csv"
        write_native_csv(jobs, path)
        code = main(["simulate", "--trace", str(path),
                     "--scheduler", "fifo"])
        assert code == 0
        assert "avg JCT" in capsys.readouterr().out


class TestTrace:
    def test_tail_prints_last_events(self, tmp_path, capsys):
        code = main(["trace", "--trace", "venus", "--jobs", "40",
                     "--scheduler", "fifo", "--out", str(tmp_path),
                     "--tail", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Last 3 of" in out
        # The tail lines are the JSON event records themselves.
        tail_lines = [line.strip() for line in out.splitlines()
                      if line.strip().startswith("{")]
        assert len(tail_lines) == 3
        assert all('"kind"' in line for line in tail_lines)

    def test_no_tail_by_default(self, tmp_path, capsys):
        code = main(["trace", "--trace", "venus", "--jobs", "40",
                     "--scheduler", "fifo", "--out", str(tmp_path)])
        assert code == 0
        out, err = capsys.readouterr()
        assert "Last " not in out
        # A roomy default ring drops nothing, so no overflow warning.
        assert "overflowed" not in err

    def test_drop_warning_on_overflow(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli
        real = cli.RingBufferTracer
        monkeypatch.setattr(cli, "RingBufferTracer",
                            lambda **kw: real(capacity=16, **kw))
        code = main(["trace", "--trace", "venus", "--jobs", "40",
                     "--scheduler", "fifo", "--out", str(tmp_path)])
        assert code == 0
        err = capsys.readouterr().err
        assert "ring buffer overflowed" in err
        assert "oldest events dropped" in err


class TestCompare:
    def test_compare_two(self, capsys):
        code = main(["compare", "--trace", "venus", "--jobs", "80",
                     "--schedulers", "fifo,sjf"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "sjf" in out

    def test_unknown_scheduler_fails(self, capsys):
        code = main(["compare", "--trace", "venus", "--jobs", "10",
                     "--schedulers", "fifo,notreal"])
        assert code == 2


class TestModelsAndPacking:
    def test_models_command(self, capsys):
        code = main(["models", "--trace", "venus", "--jobs", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Packing Analyze Model" in out
        assert "Gini importance" in out
        assert "local explanation" in out

    def test_packing_command(self, capsys):
        code = main(["packing"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Indolent Packing decisions" in out
        assert "interference-free rate" in out
