"""Tests for isotonic regression, the MLP, text tools and metrics."""

import numpy as np
import pytest

from repro.models.isotonic import is_monotonic, isotonic_fit
from repro.models.metrics import (
    accuracy,
    confusion_matrix,
    mae,
    r2_score,
    rmse,
)
from repro.models.nn import MLPRegressor
from repro.models.text import (
    AffinityPropagation,
    cluster_job_names,
    levenshtein,
    levenshtein_distance_matrix,
    levenshtein_similarity_matrix,
)


class TestIsotonic:
    def test_already_monotone_unchanged(self):
        y = [1.0, 2.0, 3.0]
        assert np.allclose(isotonic_fit(y), y)

    def test_pools_violators(self):
        fitted = isotonic_fit([3.0, 1.0, 2.0])
        assert is_monotonic(fitted)
        assert fitted[0] == fitted[1] == pytest.approx(2.0)

    def test_weighted_pooling(self):
        fitted = isotonic_fit([4.0, 0.0], weights=[3.0, 1.0])
        assert fitted[0] == fitted[1] == pytest.approx(3.0)

    def test_decreasing_direction(self):
        fitted = isotonic_fit([1.0, 3.0, 2.0], increasing=False)
        assert is_monotonic(fitted, increasing=False)

    def test_preserves_weighted_mean(self, rng):
        y = rng.normal(size=30)
        w = rng.uniform(0.5, 2.0, size=30)
        fitted = isotonic_fit(y, weights=w)
        assert np.average(fitted, weights=w) == pytest.approx(
            np.average(y, weights=w))

    def test_empty_input(self):
        assert isotonic_fit([]).size == 0

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            isotonic_fit([1.0, 2.0], weights=[1.0])
        with pytest.raises(ValueError):
            isotonic_fit([1.0, 2.0], weights=[1.0, -1.0])

    def test_is_monotonic_checks(self):
        assert is_monotonic([1, 1, 2])
        assert not is_monotonic([2, 1])
        assert is_monotonic([3, 2, 2], increasing=False)
        assert is_monotonic([5.0])


class TestMLP:
    def test_learns_linear_function(self, rng):
        X = rng.normal(size=(400, 3))
        y = 3 * X[:, 0] - 2 * X[:, 1] + 0.5
        model = MLPRegressor(hidden=(32,), epochs=100, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_learns_nonlinear_function(self, rng):
        X = rng.uniform(-2, 2, size=(600, 2))
        y = np.sin(X[:, 0] * 2) + X[:, 1] ** 2
        model = MLPRegressor(hidden=(64, 32), epochs=80, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_deterministic(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        p1 = MLPRegressor(epochs=5, random_state=7).fit(X, y).predict(X[:5])
        p2 = MLPRegressor(epochs=5, random_state=7).fit(X, y).predict(X[:5])
        assert np.allclose(p1, p2)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPRegressor().predict([[1.0, 2.0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPRegressor(hidden=())


class TestLevenshtein:
    @pytest.mark.parametrize("a,b,expected", [
        ("kitten", "sitting", 3),
        ("", "", 0),
        ("", "abc", 3),
        ("abc", "", 3),
        ("same", "same", 0),
        ("a", "b", 1),
        ("flaw", "lawn", 2),
    ])
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetry(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")

    def test_matrix_matches_scalar(self):
        names = ["trainer-r50", "trainer-r18", "bert-qa", "x", ""]
        matrix = levenshtein_distance_matrix(names)
        for i, a in enumerate(names):
            for j, b in enumerate(names):
                assert matrix[i, j] == levenshtein(a, b)

    def test_similarity_matrix_properties(self):
        names = ["aaa", "aab", "zzz"]
        sim = levenshtein_similarity_matrix(names)
        assert sim.shape == (3, 3)
        assert np.allclose(sim, sim.T)
        assert sim[0, 1] > sim[0, 2]  # aaa closer to aab than zzz


class TestAffinityPropagation:
    def test_clusters_two_blobs(self):
        # Similarity: two obvious groups.
        names = ["aaaa1", "aaaa2", "aaaa3", "zzzz1", "zzzz2"]
        sim = levenshtein_similarity_matrix(names)
        ap = AffinityPropagation().fit(sim)
        labels = ap.labels_
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_single_point(self):
        ap = AffinityPropagation().fit(np.zeros((1, 1)))
        assert ap.labels_.tolist() == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            AffinityPropagation(damping=0.4)
        with pytest.raises(ValueError):
            AffinityPropagation().fit(np.zeros((2, 3)))


class TestClusterJobNames:
    def test_groups_templates(self):
        names = ["u1-resnet-a", "u1-resnet-b", "u2-bert-a", "u2-bert-b"]
        mapping = cluster_job_names(names)
        assert mapping["u1-resnet-a"] == mapping["u1-resnet-b"]
        assert mapping["u2-bert-a"] == mapping["u2-bert-b"]
        assert mapping["u1-resnet-a"] != mapping["u2-bert-a"]

    def test_covers_all_names_beyond_cap(self):
        names = [f"group{i % 3}-run{i}" for i in range(60)]
        mapping = cluster_job_names(names, max_unique=20)
        assert set(mapping) == set(names)

    def test_empty_and_single(self):
        assert cluster_job_names([]) == {}
        assert cluster_job_names(["only"]) == {"only": 0}


class TestMetrics:
    def test_mae(self):
        assert mae([1, 2, 3], [2, 2, 2]) == pytest.approx(2 / 3)

    def test_rmse(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_r2_perfect_and_constant(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0
        assert r2_score([1, 2, 3], [2, 2, 2]) == 0.0

    def test_r2_worse_than_mean_is_negative(self):
        assert r2_score([1, 2, 3], [3, 2, 1]) < 0

    def test_accuracy(self):
        assert accuracy([1, 0, 1, 1], [1, 1, 1, 1]) == 0.75

    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 1, 1, 2], [0, 1, 2, 2])
        assert cm[1, 1] == 1 and cm[1, 2] == 1 and cm[2, 2] == 1
        assert cm.sum() == 4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mae([1, 2], [1])
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae([], [])
