"""Tests for the Chrome trace-event timeline exporter and the metrics
registry that feeds its counter track."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    RingBufferTracer,
    TraceEvent,
    build_chrome_trace,
    write_chrome_trace,
)
from repro.schedulers import TiresiasScheduler
from repro.sim import Simulator
from repro.traces import TraceGenerator, TraceSpec


def _synthetic_events():
    return [
        TraceEvent(0.0, "submit", 1, {}),
        TraceEvent(10.0, "start", 1,
                   {"name": "resnet", "gpus": [0, 1], "nodes": [0, 0],
                    "speed": 1.0, "mates": [], "profiling": False}),
        TraceEvent(20.0, "start", 2,
                   {"gpus": [3], "nodes": [1], "speed": 1.0, "mates": [],
                    "profiling": True}),
        TraceEvent(50.0, "speed", 1, {"speed": 0.8}),
        TraceEvent(90.0, "finish", 1, {}),
        TraceEvent(100.0, "decision", 3, {"mode": "shared"}),
    ]


class TestBuildChromeTrace:
    def test_lanes_instants_and_metadata(self):
        doc = build_chrome_trace(_synthetic_events(),
                                 queue_depth=[(0.0, 1.0), (10.0, 0.0)])
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"

        complete = [e for e in events if e["ph"] == "X"]
        # Job 1 spans two GPU lanes; job 2 (never closed) is closed at
        # end-of-trace with outcome "running" on its one profiler lane.
        job1 = [e for e in complete if e["args"]["job_id"] == 1]
        assert len(job1) == 2
        assert {e["tid"] for e in job1} == {0, 1}
        assert all(e["pid"] == 0 for e in job1)
        assert all(e["ts"] == 10.0e6 and e["dur"] == 80.0e6 for e in job1)
        assert all(e["args"]["outcome"] == "finish" for e in job1)
        # The mid-run speed event updated the annotation.
        assert all(e["args"]["speed"] == 0.8 for e in job1)

        job2 = [e for e in complete if e["args"]["job_id"] == 2]
        assert len(job2) == 1
        assert job2[0]["pid"] == 10_000 + 1  # profiler lanes get own pids
        assert job2[0]["args"]["outcome"] == "running"

        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"submit job 1",
                                                "shared job 3"}
        counters = [e for e in events if e["ph"] == "C"]
        assert [c["args"]["jobs"] for c in counters] == [1.0, 0.0]

        labels = {(e["pid"], e["tid"]): e["args"]["name"]
                  for e in events if e["ph"] == "M"
                  if e["name"] == "thread_name"}
        assert labels[(0, 0)] == "gpu 0"
        process_names = {e["args"]["name"] for e in events
                         if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"node 0", "profiler node 1", "scheduler"} <= process_names

    def test_empty_input(self):
        doc = build_chrome_trace([])
        assert doc["traceEvents"] == []

    def test_real_run_round_trip(self, tmp_path):
        spec = TraceSpec(name="tiny", n_nodes=4, n_vcs=2, n_jobs=50,
                         full_n_jobs=50, mean_duration=1500.0,
                         span_days=0.25, n_users=8, seed=5)
        generator = TraceGenerator(spec)
        tracer = RingBufferTracer()
        sim = Simulator(generator.build_cluster(), generator.generate(),
                        TiresiasScheduler(), tracer=tracer)
        result = sim.run()

        path = str(tmp_path / "timeline.json")
        series = result.telemetry.registry.gauge_series("queue_depth")
        n = write_chrome_trace(path, tracer.events, queue_depth=series)
        doc = json.loads(open(path).read())
        assert len(doc["traceEvents"]) == n

        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # Every finished job appears, on exactly gpu_num lanes per run.
        jobs_seen = {e["args"]["job_id"] for e in complete}
        assert jobs_seen == {r.job_id for r in result.records}
        assert all(e["dur"] >= 0.0 for e in complete)
        # Tiresias preempts: some runs must end in preemption.
        outcomes = {e["args"]["outcome"] for e in complete}
        assert "finish" in outcomes
        # Queue-depth counter track present.
        assert any(e["ph"] == "C" for e in doc["traceEvents"])


class TestFaultsTrack:
    """Fault-injection events render on their own synthetic process."""

    _FAULT_PID = 88_888

    def _fault_events(self):
        return [
            TraceEvent(0.0, "submit", 1, {}),
            TraceEvent(5.0, "start", 1,
                       {"gpus": [0], "nodes": [0], "speed": 1.0,
                        "mates": [], "profiling": False}),
            TraceEvent(30.0, "node_fail", None, {"node": 2}),
            TraceEvent(40.0, "crash", 1, {"node": 0}),
            TraceEvent(55.0, "retry", 1, {"attempt": 1}),
            TraceEvent(70.0, "node_recover", None, {"node": 2}),
        ]

    def test_fault_instants_on_fault_pid(self):
        doc = build_chrome_trace(self._fault_events())
        instants = [e for e in doc["traceEvents"]
                    if e["ph"] == "i" and e["pid"] == self._FAULT_PID]
        assert [e["name"] for e in instants] == [
            "node_fail (node 2)",
            "crash job 1 (node 0)",
            "retry job 1",
            "node_recover (node 2)",
        ]
        assert all(e["cat"] == "fault" for e in instants)
        # Job-scoped fault instants carry the job id in args.
        crash = next(e for e in instants if e["name"].startswith("crash"))
        assert crash["args"]["job_id"] == 1
        assert crash["ts"] == 40.0e6

    def test_crash_closes_the_gpu_lane(self):
        doc = build_chrome_trace(self._fault_events())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 1
        lane = complete[0]
        assert lane["args"]["outcome"] == "crash"
        assert lane["ts"] == 5.0e6
        assert lane["dur"] == 35.0e6  # start 5s, crash 40s

    def test_faults_process_named(self):
        doc = build_chrome_trace(self._fault_events())
        names = {e["pid"]: e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names[self._FAULT_PID] == "faults"

    def test_no_fault_process_without_fault_events(self):
        doc = build_chrome_trace(_synthetic_events())
        assert not any(e["pid"] == self._FAULT_PID
                       for e in doc["traceEvents"])


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs").inc(2)
        with pytest.raises(ValueError):
            registry.counter("jobs").inc(-1)

        gauge = registry.gauge("queue")
        gauge.set(3.0, time=0.0)
        gauge.set(3.0, time=0.0)  # deduped
        gauge.set(5.0, time=10.0)
        assert gauge.value == 5.0
        assert gauge.max == 5.0
        assert registry.gauge_series("queue") == [(0.0, 3.0), (10.0, 5.0)]

        hist = registry.histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.mean == 2.5
        assert hist.percentile(50) == 2.0
        assert hist.percentile(100) == 4.0

        snap = registry.snapshot()
        assert snap["jobs"] == 3
        assert snap["queue"] == 5.0
        assert snap["lat"]["count"] == 4
        assert snap["lat"]["p99"] == 4.0
