"""Tests for the Pollux-style elastic scheduler (§4.7)."""

import numpy as np
import pytest

from repro.schedulers.pollux import (
    PolluxSimulator,
    elastic_speedup,
    validation_accuracy,
)

from conftest import make_job


class TestSpeedupCurve:
    def test_full_allocation_is_unit(self):
        assert elastic_speedup(4, 4) == pytest.approx(1.0)

    def test_sublinear_below_request(self):
        assert 0.4 < elastic_speedup(2, 4) < 0.6

    def test_diminishing_above_request(self):
        gain1 = elastic_speedup(8, 4) - elastic_speedup(4, 4)
        gain2 = elastic_speedup(16, 4) - elastic_speedup(8, 4)
        assert gain1 > gain2 > 0

    def test_capped(self):
        assert elastic_speedup(1024, 1) == pytest.approx(1.6)

    def test_zero_allocation(self):
        assert elastic_speedup(0, 4) == 0.0


class TestSimulator:
    def test_single_job_with_adaptive_speedup(self):
        sim = PolluxSimulator(n_gpus=8, adaptive=True)
        result = sim.run([make_job(1, duration=1000.0, gpu_num=4)])
        # Elastic over-allocation + adaptive batch scaling beat 1000 s.
        assert result.records[0].jct < 1000.0

    def test_non_adaptive_slower(self):
        jobs = lambda: [make_job(i, duration=2000.0, gpu_num=4,
                                 submit_time=i * 10.0) for i in range(1, 7)]
        fast = PolluxSimulator(n_gpus=16, adaptive=True).run(jobs())
        slow = PolluxSimulator(n_gpus=16, adaptive=False).run(jobs())
        assert fast.avg_jct < slow.avg_jct

    def test_all_jobs_finish(self):
        jobs = [make_job(i, duration=300.0 * i, gpu_num=1 + i % 4,
                         submit_time=i * 50.0) for i in range(1, 21)]
        result = PolluxSimulator(n_gpus=8).run(jobs)
        assert result.n_jobs == 20
        assert all(r.jct > 0 for r in result.records)

    def test_contention_increases_jct(self):
        def jobs():
            return [make_job(i, duration=1000.0, gpu_num=4, submit_time=0.0)
                    for i in range(1, 9)]
        light = PolluxSimulator(n_gpus=64).run(jobs())
        heavy = PolluxSimulator(n_gpus=8).run(jobs())
        assert heavy.avg_jct > light.avg_jct

    def test_decision_latency_superlinear(self):
        sim = PolluxSimulator(n_gpus=8)
        assert sim.decision_latency(320) > 2 * sim.decision_latency(160)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolluxSimulator(n_gpus=0)


class TestAccuracyModel:
    def test_adaptive_gap_matches_paper(self):
        """Figure 14b: 89.84% vs 87.63% best validation accuracy."""
        normal = validation_accuracy(200, adaptive=False)
        adaptive = validation_accuracy(200, adaptive=True)
        assert normal.max() == pytest.approx(89.84, abs=0.5)
        assert adaptive.max() == pytest.approx(87.63, abs=0.5)
        assert normal.max() - adaptive.max() > 1.5

    def test_curves_saturate(self):
        curve = validation_accuracy(200, adaptive=False)
        assert curve[-1] - curve[150] < 1.5
        assert curve[50] > curve[5]

    def test_validation(self):
        with pytest.raises(ValueError):
            validation_accuracy(0, adaptive=False)
