"""Tests for the affiliated-resource (CPU) extension (paper §6)."""

import pytest

from repro.cluster import Cluster, find_consolidated
from repro.core.binder import AffineJobpairBinder
from repro.schedulers.base import Scheduler
from repro.sim import Simulator
from repro.traces import TraceGenerator, TraceSpec

from conftest import make_job


class Greedy(Scheduler):
    def schedule(self, now):
        for job in sorted(self.queue, key=lambda j: j.submit_time):
            if self.try_place_exclusive(job):
                self.queue.remove(job)


class PackPair(Scheduler):
    def schedule(self, now):
        for job in list(self.queue):
            running = self.engine.running_jobs()
            if running and running[0].gpu_num == job.gpu_num:
                self.engine.start_job(job, self.engine.gpus_of(running[0]))
            elif not self.try_place_exclusive(job):
                continue
            self.queue.remove(job)


def cpu_job(job_id, cpu_per_gpu, sensitivity=1.0, gpu_num=8,
            duration=1000.0, gpu_util=5.0):
    job = make_job(job_id, duration=duration, gpu_num=gpu_num,
                   gpu_util=gpu_util, mem_util=3.0)
    job.cpu_per_gpu = cpu_per_gpu
    job.cpu_sensitivity = sensitivity
    return job


class TestCPUModel:
    def test_disabled_by_default(self):
        # Two CPU-monsters packed together: without the CPU model their
        # speed is interference-only.
        jobs = [cpu_job(1, cpu_per_gpu=32.0), cpu_job(2, cpu_per_gpu=32.0)]
        cluster = Cluster.homogeneous(1, vc_name="vc1")
        result = Simulator(cluster, jobs, PackPair()).run()
        for record in result.records:
            assert record.jct < 1100.0  # barely slowed (light profiles)

    def test_cpu_squeeze_slows_packed_jobs(self):
        jobs = [cpu_job(1, cpu_per_gpu=8.0), cpu_job(2, cpu_per_gpu=8.0)]
        cluster = Cluster.homogeneous(1, vc_name="vc1")
        result = Simulator(cluster, jobs, PackPair(), model_cpu=True).run()
        # Demand 2 jobs x 8 GPUs x 8 CPUs = 128 > 64 CPUs: share = 0.5,
        # sensitivity 1.0 -> ~half speed (plus slight GPU interference).
        for record in result.records:
            assert record.jct > 1800.0

    def test_sufficient_cpus_no_slowdown(self):
        jobs = [cpu_job(1, cpu_per_gpu=4.0), cpu_job(2, cpu_per_gpu=4.0)]
        cluster = Cluster.homogeneous(1, vc_name="vc1")
        result = Simulator(cluster, jobs, PackPair(), model_cpu=True).run()
        # 2 x 8 x 4 = 64 = node CPUs: no squeeze.
        for record in result.records:
            assert record.jct < 1100.0

    def test_insensitive_job_barely_notices(self):
        jobs = [cpu_job(1, cpu_per_gpu=8.0, sensitivity=0.05),
                cpu_job(2, cpu_per_gpu=8.0, sensitivity=0.05)]
        cluster = Cluster.homogeneous(1, vc_name="vc1")
        result = Simulator(cluster, jobs, PackPair(), model_cpu=True).run()
        for record in result.records:
            assert record.jct < 1150.0

    def test_exclusive_jobs_unaffected(self):
        jobs = [cpu_job(1, cpu_per_gpu=8.0, sensitivity=1.0)]
        cluster = Cluster.homogeneous(1, vc_name="vc1")
        result = Simulator(cluster, jobs, Greedy(), model_cpu=True).run()
        # 8 GPUs x 8 CPUs = 64 = capacity: exactly satisfiable.
        assert result.records[0].jct == pytest.approx(1000.0, rel=0.01)


class TestCPUAwareBinder:
    def test_prefers_cpu_fitting_mate(self):
        """Among equal sharing scores, the CPU-fitting mate wins."""
        from test_binder import engine_with_running, const_estimate

        hungry = cpu_job(1, cpu_per_gpu=8.0, gpu_num=8)
        hungry.sharing_score = 0
        frugal = cpu_job(2, cpu_per_gpu=2.0, gpu_num=8, gpu_util=6.0)
        frugal.sharing_score = 0
        job = cpu_job(3, cpu_per_gpu=8.0, gpu_num=8)
        job.sharing_score = 0
        sim = engine_with_running([hungry, frugal], extra=[job])
        sim.model_cpu = True
        binder = AffineJobpairBinder()
        # job+hungry demands 128 > 64 CPUs (overload 64); job+frugal
        # demands 80 (overload 16): frugal wins despite higher... equal
        # sharing scores.
        assert binder.find_mate(sim, job, const_estimate()) is frugal

    def test_overload_never_vetoes(self):
        """A CPU-oversubscribed pair still packs when it is the only
        option — packing beats queuing under contention."""
        from test_binder import engine_with_running, const_estimate

        mate = cpu_job(1, cpu_per_gpu=8.0)
        mate.sharing_score = 0
        job = cpu_job(2, cpu_per_gpu=8.0)
        job.sharing_score = 0
        sim = engine_with_running([mate], extra=[job])
        sim.model_cpu = True
        binder = AffineJobpairBinder()
        assert binder.find_mate(sim, job, const_estimate()) is mate

    def test_ranking_inert_without_cpu_model(self):
        from test_binder import engine_with_running, const_estimate

        mate = cpu_job(1, cpu_per_gpu=32.0)
        mate.sharing_score = 0
        job = cpu_job(2, cpu_per_gpu=32.0)
        job.sharing_score = 0
        sim = engine_with_running([mate], extra=[job])
        binder = AffineJobpairBinder()
        assert binder._cpu_overload(sim, job, mate) == 0.0
        assert binder.find_mate(sim, job, const_estimate()) is mate


class TestEndToEndCPU:
    def test_lucid_runs_with_cpu_model(self):
        from repro.core import LucidScheduler

        spec = TraceSpec(name="cpu", n_nodes=6, n_vcs=2, n_jobs=250,
                         full_n_jobs=250, mean_duration=1800.0,
                         span_days=0.3, n_users=12, seed=777)
        gen = TraceGenerator(spec)
        cluster = gen.build_cluster()
        history = gen.generate_history()
        jobs = gen.generate()
        result = Simulator(cluster, jobs, LucidScheduler(history),
                           model_cpu=True).run()
        assert result.n_jobs == spec.n_jobs

    def test_generator_assigns_task_based_cpu_demand(self):
        spec = TraceSpec(name="cpu", n_nodes=4, n_vcs=1, n_jobs=400,
                         full_n_jobs=400, mean_duration=1800.0,
                         span_days=0.3, n_users=12, seed=777)
        jobs = TraceGenerator(spec).generate()
        demands = {j.cpu_per_gpu for j in jobs}
        assert len(demands) > 1  # task families differ
        assert all(2.0 <= j.cpu_per_gpu <= 16.0 for j in jobs)
        assert all(0.0 <= j.cpu_sensitivity <= 1.0 for j in jobs)
