"""End-to-end integration tests of the full Lucid scheduler."""

import numpy as np
import pytest

from repro import make_scheduler, quick_simulation
from repro.core import LucidConfig, LucidScheduler
from repro.schedulers import FIFOScheduler, SJFScheduler
from repro.sim import Simulator
from repro.traces import TraceGenerator, TraceSpec
from repro.workloads import JobStatus


SPEC = TraceSpec(
    name="itest", n_nodes=8, n_vcs=3, n_jobs=300, full_n_jobs=300,
    mean_duration=2500.0, span_days=0.6, n_users=20, seed=123,
)


def run_lucid(config=None, spec=SPEC):
    gen = TraceGenerator(spec)
    cluster = gen.build_cluster()
    history = gen.generate_history()
    jobs = gen.generate()
    scheduler = LucidScheduler(history, config=config)
    result = Simulator(cluster, jobs, scheduler).run()
    return result, scheduler


@pytest.fixture(scope="module")
def lucid_run():
    return run_lucid()


class TestCompleteness:
    def test_all_jobs_finish(self, lucid_run):
        result, _ = lucid_run
        assert result.n_jobs == SPEC.n_jobs

    def test_profiler_filters_debug_jobs(self, lucid_run):
        """§4.5: 23-55% of jobs finish during the profiling stage."""
        result, _ = lucid_run
        assert 0.15 <= result.profiler_finish_rate() <= 0.70

    def test_no_preemptions(self, lucid_run):
        """Lucid is preemption-free (A1)."""
        result, _ = lucid_run
        assert result.total_preemptions() == 0

    def test_profiled_jobs_have_measured_profiles(self, lucid_run):
        result, _ = lucid_run
        for record in result.records:
            assert record.profile is not None

    def test_queue_delays_non_negative(self, lucid_run):
        result, _ = lucid_run
        assert all(r.queue_delay >= -1e-6 for r in result.records)

    def test_dynamic_modes_were_exercised(self, lucid_run):
        _, scheduler = lucid_run
        assert len(scheduler.mode_history) > 0


class TestPerformance:
    def test_beats_fifo_substantially(self, lucid_run):
        lucid, _ = lucid_run
        gen = TraceGenerator(SPEC)
        cluster = gen.build_cluster()
        gen.generate_history()
        fifo = Simulator(cluster, gen.generate(), FIFOScheduler()).run()
        assert lucid.avg_jct < fifo.avg_jct

    def test_competitive_with_sjf_oracle(self, lucid_run):
        lucid, _ = lucid_run
        gen = TraceGenerator(SPEC)
        cluster = gen.build_cluster()
        gen.generate_history()
        sjf = Simulator(cluster, gen.generate(), SJFScheduler()).run()
        assert lucid.avg_jct < sjf.avg_jct * 1.35

    def test_short_jobs_get_fast_feedback(self, lucid_run):
        """Debugging feedback: short jobs see sub-minute-scale queuing."""
        result, _ = lucid_run
        short = [r for r in result.records if r.duration <= 120.0]
        assert short
        assert np.median([r.queue_delay for r in short]) < 300.0


class TestAblations:
    def test_sharing_off_runs(self):
        result, scheduler = run_lucid(LucidConfig(packing_policy="off"))
        assert result.utilization.gpu_shared == 0.0
        assert result.n_jobs == SPEC.n_jobs

    def test_naive_packing_runs(self):
        result, _ = run_lucid(LucidConfig(packing_policy="naive"))
        assert result.n_jobs == SPEC.n_jobs

    def test_no_estimator_runs(self):
        result, scheduler = run_lucid(LucidConfig(enable_estimator=False))
        assert scheduler.estimator is None
        assert result.n_jobs == SPEC.n_jobs

    def test_no_profiler_runs(self):
        result, scheduler = run_lucid(LucidConfig(enable_profiler=False))
        assert scheduler.profiler is None
        assert result.profiler_finish_rate() == 0.0
        assert result.n_jobs == SPEC.n_jobs

    def test_static_models_run(self):
        result, scheduler = run_lucid(LucidConfig(update_interval=None))
        assert scheduler.update_engine.refits == 0
        assert result.n_jobs == SPEC.n_jobs

    def test_instability_eviction_runs(self):
        result, _ = run_lucid(LucidConfig(instability_rate=0.05))
        assert result.n_jobs == SPEC.n_jobs

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LucidConfig(packing_policy="aggressive")
        with pytest.raises(ValueError):
            LucidConfig(t_prof=-1.0)

    def test_ablated_copy(self):
        config = LucidConfig().ablated(enable_estimator=False)
        assert not config.enable_estimator
        assert config.enable_profiler  # untouched


class TestNonIntrusiveness:
    def test_scheduler_never_reads_true_duration(self):
        """The estimate must come from history, not job.duration."""
        gen = TraceGenerator(SPEC)
        cluster = gen.build_cluster()
        history = gen.generate_history()
        jobs = gen.generate()
        scheduler = LucidScheduler(history)
        result = Simulator(cluster, jobs, scheduler).run()
        # Estimated durations differ from ground truth for most jobs
        # (an oracle would match them exactly).
        ests = [(j.estimated_duration, j.duration) for j in jobs
                if j.estimated_duration is not None]
        assert ests
        exact = sum(1 for est, actual in ests
                    if est == pytest.approx(actual, rel=1e-9))
        assert exact < len(ests) * 0.1

    def test_requires_history(self):
        with pytest.raises(ValueError):
            LucidScheduler([])


class TestQuickSimulation:
    def test_quick_simulation_api(self):
        result = quick_simulation("venus", scheduler="fifo", n_jobs=60,
                                  seed=5)
        assert result.n_jobs == 60

    def test_make_scheduler_unknown(self):
        with pytest.raises(KeyError):
            make_scheduler("cosmos", [])
