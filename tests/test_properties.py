"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.models.isotonic import is_monotonic, isotonic_fit
from repro.models.metrics import mae, r2_score
from repro.models.text import levenshtein
from repro.schedulers import FIFOScheduler, SJFScheduler
from repro.sim import Simulator
from repro.workloads import ResourceProfile
from repro.workloads.colocation import InterferenceModel, fitted_curve

from conftest import make_job


# ---------------------------------------------------------------------------
# Isotonic regression
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60))
def test_isotonic_output_is_monotone(values):
    assert is_monotonic(isotonic_fit(values))


@given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=40))
def test_isotonic_idempotent(values):
    once = isotonic_fit(values)
    twice = isotonic_fit(once)
    assert np.allclose(once, twice)


@given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=40))
def test_isotonic_preserves_mean(values):
    fitted = isotonic_fit(values)
    assert np.mean(fitted) == np.float64(np.mean(values)).item() \
        or abs(np.mean(fitted) - np.mean(values)) < 1e-6


@given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
def test_isotonic_monotone_input_is_fixed_point(values):
    ordered = sorted(values)
    assert np.allclose(isotonic_fit(ordered), ordered)


# ---------------------------------------------------------------------------
# Levenshtein distance
# ---------------------------------------------------------------------------
_names = st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                 max_size=25)


@given(_names, _names)
def test_levenshtein_symmetric(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@given(_names, _names)
def test_levenshtein_bounds(a, b):
    d = levenshtein(a, b)
    assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


@given(_names)
def test_levenshtein_identity(a):
    assert levenshtein(a, a) == 0


@given(_names, _names, _names)
@settings(max_examples=40)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


# ---------------------------------------------------------------------------
# Interference model
# ---------------------------------------------------------------------------
@given(st.floats(0, 200))
def test_fitted_curve_bounded(load):
    assert 0.2 <= fitted_curve(load) <= 1.0


@given(st.floats(1, 100), st.floats(1, 100), st.floats(1, 100),
       st.floats(1, 100))
@settings(max_examples=60)
def test_pair_speeds_bounded_and_symmetric_on_average(u1, m1, u2, m2):
    model = InterferenceModel()
    a = ResourceProfile(u1, m1, 1000.0)
    b = ResourceProfile(u2, m2, 1000.0)
    ab = model.pair_speeds(a, b, pair_key=("x", "y"))
    ba = model.pair_speeds(b, a, pair_key=("x", "y"))
    assert 0.2 <= ab.first <= 1.0
    assert 0.2 <= ab.second <= 1.0
    assert ab.average == ba.average


@given(st.integers(1, 5))
def test_kway_speed_decreases_with_width(k):
    model = InterferenceModel()
    profile = ResourceProfile(40.0, 20.0, 1000.0)
    speeds = [model.k_way_speed([profile] * n) for n in range(1, k + 1)]
    assert all(s1 >= s2 for s1, s2 in zip(speeds, speeds[1:]))


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=50))
def test_r2_of_truth_is_one(values):
    assert r2_score(values, values) == 1.0


@given(st.lists(st.floats(-1e4, 1e4), min_size=1, max_size=50),
       st.floats(-10, 10))
def test_mae_shift_invariance(values, shift):
    arr = np.array(values)
    assert abs(mae(arr, arr + shift) - abs(shift)) < 1e-6


# ---------------------------------------------------------------------------
# Simulator invariants under random workloads
# ---------------------------------------------------------------------------
@st.composite
def job_list(draw):
    n = draw(st.integers(1, 12))
    jobs = []
    for i in range(n):
        jobs.append(make_job(
            job_id=i + 1,
            duration=draw(st.floats(10.0, 5000.0)),
            gpu_num=draw(st.sampled_from([1, 2, 4, 8])),
            submit_time=draw(st.floats(0.0, 2000.0)),
        ))
    return jobs


@given(job_list())
@settings(max_examples=25, deadline=None)
def test_simulation_conservation_fifo(jobs):
    """Every job finishes exactly once; JCT >= duration; queue >= 0."""
    cluster = Cluster.homogeneous(2, vc_name="vc1")
    result = Simulator(cluster, jobs, FIFOScheduler()).run()
    assert result.n_jobs == len(jobs)
    for record in result.records:
        assert record.jct >= record.duration - 1e-6
        assert record.queue_delay >= -1e-6


@given(job_list())
@settings(max_examples=25, deadline=None)
def test_sjf_never_loses_to_fifo_by_much(jobs):
    """SJF's average JCT is never dramatically worse than FIFO's."""
    def run(scheduler_cls):
        cluster = Cluster.homogeneous(2, vc_name="vc1")
        cloned = [make_job(j.job_id, duration=j.duration, gpu_num=j.gpu_num,
                           submit_time=j.submit_time) for j in jobs]
        return Simulator(cluster, cloned, scheduler_cls()).run()

    sjf = run(SJFScheduler)
    fifo = run(FIFOScheduler)
    assert sjf.avg_jct <= fifo.avg_jct * 1.5 + 60.0
