"""Tests for the ``repro bench`` perf harness (repro.bench)."""

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchScenario,
    bench_filename,
    diff_bench,
    format_diff,
    load_bench,
    run_bench,
    run_scenario,
    validate_bench,
    write_bench,
)


def _document(n_jobs=40):
    scenarios = (BenchScenario("fifo", "venus", n_jobs),
                 BenchScenario("tiresias", "venus", n_jobs))
    return run_bench(scenarios, quick=True)


@pytest.fixture(scope="module")
def bench_doc():
    """One real quick-bench document shared across this module."""
    return _document()


class TestScenario:
    def test_name_and_key(self):
        scenario = BenchScenario("lucid", "venus", 120)
        assert scenario.name == "lucid/venus@120j-s7"
        assert scenario.key == ("lucid", "venus", 120, 7)

    def test_run_scenario_record(self):
        record = run_scenario(BenchScenario("fifo", "venus", 30))
        assert record["scheduler"] == "fifo"
        assert record["events"] > 0
        assert record["wall_seconds"] > 0
        assert record["events_per_sec"] > 0
        assert record["makespan_hrs"] > 0
        phases = record["phases"]
        assert sum(v["count"] for v in phases["event_kinds"].values()) == \
            record["events"]
        assert phases["schedule_passes"]["count"] > 0


class TestDocument:
    def test_schema_and_totals(self, bench_doc):
        validate_bench(bench_doc)  # must not raise
        assert bench_doc["schema"] == BENCH_SCHEMA
        assert len(bench_doc["scenarios"]) == 2
        totals = bench_doc["totals"]
        assert totals["events"] == sum(s["events"]
                                       for s in bench_doc["scenarios"])
        assert totals["events_per_sec"] > 0

    def test_write_load_round_trip(self, bench_doc, tmp_path):
        path = str(tmp_path / bench_filename())
        write_bench(bench_doc, path)
        assert load_bench(path) == json.loads(open(path).read())

    def test_filename_shape(self):
        name = bench_filename()
        assert name.startswith("BENCH_") and name.endswith(".json")

    def test_validate_rejects_bad_documents(self, bench_doc):
        with pytest.raises(ValueError, match="schema"):
            validate_bench({"schema": "nope"})
        headless = copy.deepcopy(bench_doc)
        del headless["totals"]
        with pytest.raises(ValueError, match="totals"):
            validate_bench(headless)
        empty = copy.deepcopy(bench_doc)
        empty["scenarios"] = []
        with pytest.raises(ValueError, match="no scenarios"):
            validate_bench(empty)
        broken = copy.deepcopy(bench_doc)
        del broken["scenarios"][0]["events_per_sec"]
        with pytest.raises(ValueError, match="events_per_sec"):
            validate_bench(broken)


class TestDiff:
    def test_identical_documents_pass(self, bench_doc):
        rows, regressions = diff_bench(bench_doc, bench_doc)
        assert not regressions
        assert all(row["ratio"] == 1.0 for row in rows)

    def test_injected_regression_detected(self, bench_doc):
        slowed = copy.deepcopy(bench_doc)
        slowed["scenarios"][0]["events_per_sec"] *= 0.5
        rows, regressions = diff_bench(bench_doc, slowed, threshold=0.25)
        assert len(regressions) == 1
        name = bench_doc["scenarios"][0]["name"]
        assert name in regressions[0]
        flagged = [r for r in rows if r["note"] == "REGRESSION"]
        assert [r["name"] for r in flagged] == [name]
        report = format_diff(rows, regressions, 0.25)
        assert "REGRESSION" in report
        assert "1 regression(s)" in report

    def test_regression_within_threshold_passes(self, bench_doc):
        slowed = copy.deepcopy(bench_doc)
        for entry in slowed["scenarios"]:
            entry["events_per_sec"] *= 0.8  # -20% < 25% threshold
        _, regressions = diff_bench(bench_doc, slowed, threshold=0.25)
        assert not regressions

    def test_unmatched_scenarios_never_regress(self, bench_doc):
        extended = copy.deepcopy(bench_doc)
        extra = copy.deepcopy(extended["scenarios"][0])
        extra["scheduler"] = "sjf"
        extra["name"] = "sjf/venus@40j-s7"
        extended["scenarios"].append(extra)
        rows, regressions = diff_bench(bench_doc, extended)
        assert not regressions
        assert [r["note"] for r in rows].count("new scenario") == 1
        rows, regressions = diff_bench(extended, bench_doc)
        assert not regressions
        assert [r["note"] for r in rows].count("baseline-only") == 1

    def test_threshold_validated(self, bench_doc):
        with pytest.raises(ValueError, match="threshold"):
            diff_bench(bench_doc, bench_doc, threshold=0.0)


class TestCommittedBaseline:
    def test_baseline_is_valid_and_quick(self):
        import os
        path = os.path.join(os.path.dirname(__file__), "..",
                            "benchmarks", "results", "bench_baseline.json")
        document = load_bench(path)
        assert document["quick"] is True
        keys = {(s["scheduler"], s["trace"], s["jobs"], s["seed"])
                for s in document["scenarios"]}
        from repro.bench import QUICK_MATRIX
        assert keys == {s.key for s in QUICK_MATRIX}


class TestBenchCLI:
    def test_quick_run_and_self_diff(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "bench.json")
        assert main(["bench", "--quick", "--jobs", "30",
                     "--schedulers", "fifo", "--out", out]) == 0
        document = load_bench(out)
        assert {s["scheduler"] for s in document["scenarios"]} == {"fifo"}
        # Diff-only mode against itself: identical, exit 0.
        assert main(["bench", "--candidate", out, "--against", out]) == 0
        assert "no events/sec regression" in capsys.readouterr().out

    def test_cli_flags_regression(self, tmp_path, capsys):
        from repro.cli import main

        base = str(tmp_path / "base.json")
        slow = str(tmp_path / "slow.json")
        document = _document(n_jobs=30)
        write_bench(document, base)
        slowed = copy.deepcopy(document)
        for entry in slowed["scenarios"]:
            entry["events_per_sec"] *= 0.5
        write_bench(slowed, slow)
        assert main(["bench", "--candidate", slow, "--against", base]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # A looser threshold lets the same diff pass.
        assert main(["bench", "--candidate", slow, "--against", base,
                     "--threshold", "0.6"]) == 0

    def test_cli_rejects_bad_usage(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench", "--candidate", "whatever.json"]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        good = str(tmp_path / "good.json")
        write_bench(_document(n_jobs=30), good)
        assert main(["bench", "--candidate", str(bad),
                     "--against", good]) == 2
        err = capsys.readouterr().err
        assert "invalid bench file" in err
