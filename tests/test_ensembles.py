"""Tests for random forests and gradient boosting."""

import numpy as np
import pytest

from repro.models.boosting import (
    GradientBoostingRegressor,
    lightgbm_like,
    xgboost_like,
)
from repro.models.forest import RandomForestClassifier, RandomForestRegressor
from repro.models.metrics import accuracy, r2_score


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    X = rng.uniform(-2, 2, size=(500, 4))
    y = np.sin(X[:, 0] * 2) * 3 + X[:, 1] ** 2 + rng.normal(0, 0.2, 500)
    return X, y


class TestRandomForest:
    def test_regressor_fits(self, data):
        X, y = data
        model = RandomForestRegressor(n_estimators=20, max_depth=8,
                                      random_state=1).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.85

    def test_classifier_fits(self, data):
        X, y = data
        labels = (y > np.median(y)).astype(int)
        model = RandomForestClassifier(n_estimators=15, max_depth=6,
                                       random_state=1).fit(X, labels)
        assert accuracy(labels, model.predict(X)) > 0.9

    def test_classifier_proba_shape(self, data):
        X, y = data
        labels = (y > np.median(y)).astype(int)
        model = RandomForestClassifier(n_estimators=5, max_depth=3).fit(X, labels)
        probs = model.predict_proba(X[:10])
        assert probs.shape == (10, 2)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_deterministic_given_seed(self, data):
        X, y = data
        p1 = RandomForestRegressor(n_estimators=5, random_state=3).fit(X, y).predict(X[:5])
        p2 = RandomForestRegressor(n_estimators=5, random_state=3).fit(X, y).predict(X[:5])
        assert np.allclose(p1, p2)

    def test_importances_shape(self, data):
        X, y = data
        model = RandomForestRegressor(n_estimators=5, max_depth=4).fit(X, y)
        imps = model.feature_importances()
        assert imps.shape == (4,)
        assert imps.sum() == pytest.approx(1.0, abs=1e-6)

    def test_invalid_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict([[1, 2, 3, 4]])


class TestGradientBoosting:
    def test_fits_nonlinear_target(self, data):
        X, y = data
        model = GradientBoostingRegressor(n_estimators=80, max_depth=3,
                                          random_state=1).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_more_stages_improve_train_fit(self, data):
        X, y = data
        model = GradientBoostingRegressor(n_estimators=40, max_depth=2).fit(X, y)
        scores = [r2_score(y, pred) for pred in model.staged_predict(X)]
        assert scores[-1] > scores[0]

    def test_presets_construct(self):
        assert lightgbm_like().subsample == 0.8
        assert xgboost_like().reg_lambda == 1.0

    def test_preset_overrides(self):
        model = lightgbm_like(n_estimators=10)
        assert model.n_estimators == 10

    def test_l2_shrinks_predictions(self, data):
        X, y = data
        y_centered = y - y.mean()
        plain = GradientBoostingRegressor(n_estimators=5, max_depth=2,
                                          random_state=0).fit(X, y_centered)
        reg = GradientBoostingRegressor(n_estimators=5, max_depth=2,
                                        reg_lambda=100.0,
                                        random_state=0).fit(X, y_centered)
        assert (np.abs(reg.predict(X) - y_centered.mean()).mean()
                < np.abs(plain.predict(X) - y_centered.mean()).mean())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict([[1.0]])
