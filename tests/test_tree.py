"""Tests for CART trees and minimal cost-complexity pruning."""

import numpy as np
import pytest

from repro.models.metrics import accuracy, r2_score
from repro.models.tree import DecisionTreeClassifier, DecisionTreeRegressor


@pytest.fixture
def classification_data(rng):
    X = rng.normal(size=(400, 3))
    y = ((X[:, 0] > 0) & (X[:, 1] > -0.5)).astype(int)
    return X, y


@pytest.fixture
def regression_data(rng):
    X = rng.uniform(-2, 2, size=(400, 3))
    y = np.where(X[:, 0] > 0, 5.0, -5.0) + 0.5 * X[:, 1]
    return X, y


class TestClassifier:
    def test_fits_axis_aligned_concept(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert accuracy(y, tree.predict(X)) > 0.95

    def test_predict_proba_sums_to_one(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        probs = tree.predict_proba(X[:20])
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_multiclass(self, rng):
        X = rng.normal(size=(300, 2))
        y = np.digitize(X[:, 0], [-0.5, 0.5])  # 3 classes
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert accuracy(y, tree.predict(X)) > 0.95
        assert set(tree.predict(X)) <= {0, 1, 2}

    def test_string_labels(self, rng):
        X = rng.normal(size=(100, 2))
        y = np.where(X[:, 0] > 0, "pos", "neg")
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert set(tree.predict(X)) <= {"pos", "neg"}

    def test_pure_node_is_leaf(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.root_.is_leaf

    def test_max_depth_respected(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth_ <= 2

    def test_min_samples_leaf(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(min_samples_leaf=50).fit(X, y)
        assert all(leaf.n >= 50 for leaf in tree.root_.leaves())

    def test_decision_path(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        path = tree.decision_path(X[0])
        assert 1 <= len(path) <= 3
        for feature, threshold, went_left in path:
            assert 0 <= feature < 3
            assert isinstance(went_left, bool)

    def test_to_text_renders(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        text = tree.to_text(feature_names=["a", "b", "c"],
                            class_names=["no", "yes"])
        assert "if a <=" in text or "if b <=" in text
        assert "class" in text

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeClassifier().predict([[1.0]])


class TestRegressor:
    def test_fits_step_function(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        assert r2_score(y, tree.predict(X)) > 0.95

    def test_constant_target(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.full(10, 3.3)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.root_.is_leaf
        assert tree.predict([[5.0]])[0] == pytest.approx(3.3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))


class TestImportances:
    def test_importances_sum_to_one(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        imps = tree.feature_importances()
        assert imps.sum() == pytest.approx(1.0)

    def test_informative_feature_dominates(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        imps = tree.feature_importances()
        assert np.argmax(imps) == 0
        assert imps[0] > 0.7


class TestPruning:
    def test_pruning_shrinks_tree(self, classification_data, rng):
        X, y = classification_data
        noisy = y.copy()
        flip = rng.random(len(y)) < 0.15
        noisy[flip] = 1 - noisy[flip]
        tree = DecisionTreeClassifier().fit(X, noisy)
        before = tree.n_leaves_
        tree.prune(ccp_alpha=0.01)
        assert tree.n_leaves_ < before

    def test_zero_alpha_keeps_tree(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        before = tree.n_leaves_
        tree.prune(ccp_alpha=0.0)
        assert tree.n_leaves_ == before

    def test_huge_alpha_collapses_to_stump_or_leaf(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier().fit(X, y)
        tree.prune(ccp_alpha=1.0)
        assert tree.n_leaves_ == 1

    def test_pruning_path_monotone(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier().fit(X, y)
        alphas = tree.cost_complexity_pruning_path()
        assert alphas[0] == 0.0
        assert all(a <= b + 1e-12 for a, b in zip(alphas, alphas[1:]))

    def test_pruned_tree_still_accurate(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier().fit(X, y)
        tree.prune(ccp_alpha=0.005)
        assert accuracy(y, tree.predict(X)) > 0.9

    def test_negative_alpha_rejected(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        with pytest.raises(ValueError):
            tree.prune(-0.1)
