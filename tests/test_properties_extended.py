"""Extended property-based tests: packing engine, GA²M, trace generator."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, find_consolidated, find_shared
from repro.models.gam import GA2MRegressor
from repro.schedulers.base import Scheduler
from repro.sim import Simulator
from repro.traces import TraceGenerator, TraceSpec
from repro.workloads import InterferenceModel

from conftest import make_job


class GreedyPacker(Scheduler):
    """Packs onto any same-size exclusive runner, else places exclusively."""

    def schedule(self, now):
        for job in list(self.queue):
            placed = False
            for mate in self.engine.running_jobs():
                if (mate.gpu_num == job.gpu_num
                        and not self.engine.mates_of(mate)
                        and mate.gpu_num <= 8):
                    gpus = find_shared(self.engine.cluster,
                                       self.engine.gpus_of(mate),
                                       job.profile.gpu_mem_mb)
                    if gpus is not None:
                        self.engine.start_job(job, gpus)
                        placed = True
                        break
            if not placed:
                placed = self.try_place_exclusive(job)
            if placed:
                self.queue.remove(job)


@st.composite
def packing_jobs(draw):
    n = draw(st.integers(2, 10))
    jobs = []
    for i in range(n):
        jobs.append(make_job(
            job_id=i + 1,
            duration=draw(st.floats(20.0, 3000.0)),
            gpu_num=draw(st.sampled_from([1, 2, 4])),
            submit_time=draw(st.floats(0.0, 500.0)),
            gpu_util=draw(st.floats(5.0, 95.0)),
            mem_util=draw(st.floats(2.0, 70.0)),
            mem_mb=draw(st.floats(500.0, 11_000.0)),
        ))
    return jobs


@given(packing_jobs())
@settings(max_examples=25, deadline=None)
def test_packing_engine_conservation(jobs):
    """With arbitrary packing, every job still finishes exactly once, JCT
    is bounded below by the exclusive duration and above by a slowdown
    bound (pair speed >= 0.2 and at most one mate)."""
    cluster = Cluster.homogeneous(1, vc_name="vc1")
    result = Simulator(cluster, jobs, GreedyPacker(),
                       interference=InterferenceModel()).run()
    assert result.n_jobs == len(jobs)
    finish_order = sorted(result.records, key=lambda r: r.submit_time + r.jct)
    total_span = finish_order[-1].submit_time + finish_order[-1].jct
    for record in result.records:
        assert record.jct >= record.duration - 1e-6
        assert record.queue_delay >= -1e-6
        # Service time can stretch at most 5x (speed floor 0.2).
        assert record.jct <= record.queue_delay + record.duration * 5.0 + 1.0
    assert total_span < 1e9


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_trace_generator_invariants(seed):
    spec = TraceSpec(name="prop", n_nodes=4, n_vcs=2, n_jobs=60,
                     full_n_jobs=60, mean_duration=1500.0, span_days=0.3,
                     n_users=6, seed=seed)
    generator = TraceGenerator(spec)
    cluster = generator.build_cluster()
    jobs = generator.generate()
    assert len(jobs) == 60
    assert all(j.duration >= 10.0 for j in jobs)
    times = [j.submit_time for j in jobs]
    assert times == sorted(times)
    # Every job fits its VC.
    for job in jobs:
        assert job.gpu_num <= cluster.vc(job.vc).n_gpus
    # Ids unique and contiguous from 1.
    ids = sorted(j.job_id for j in jobs)
    assert ids == list(range(ids[0], ids[0] + 60))


@st.composite
def regression_data(draw):
    n = draw(st.integers(30, 150))
    d = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 1000))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = rng.normal(size=n) * draw(st.floats(0.1, 10.0))
    return X, y


@given(regression_data())
@settings(max_examples=20, deadline=None)
def test_ga2m_local_explanations_always_decompose(data):
    """For ANY fitted GA²M, every local explanation reconstructs the
    model's prediction exactly (the core interpretability contract)."""
    X, y = data
    model = GA2MRegressor(n_rounds=15, max_bins=8).fit(X, y)
    predictions = model.predict(X[:5])
    for i in range(min(5, len(X))):
        local = model.explain_local(X[i])
        assert abs(local.prediction - predictions[i]) < 1e-8


@given(regression_data())
@settings(max_examples=20, deadline=None)
def test_ga2m_beats_or_matches_constant_on_train(data):
    """Boosted shape functions never fit worse than the intercept alone."""
    X, y = data
    model = GA2MRegressor(n_rounds=15, max_bins=8).fit(X, y)
    mse_model = float(np.mean((model.predict(X) - y) ** 2))
    mse_const = float(np.mean((y - y.mean()) ** 2))
    assert mse_model <= mse_const + 1e-9


@given(st.integers(1, 24), st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_consolidated_placement_sound(gpu_num, occupied):
    """find_consolidated never returns busy GPUs or a wrong count."""
    cluster = Cluster({"a": 2, "b": 2})
    rng = np.random.default_rng(occupied)
    for gpu in rng.choice(cluster.gpus, size=min(occupied % 20, 31),
                          replace=False):
        gpu.attach(999, 10.0)
    found = find_consolidated(cluster, gpu_num)
    if found is not None:
        assert len(found) == gpu_num
        assert all(g.is_free for g in found)
        if gpu_num <= 8:
            assert len({g.node_id for g in found}) == 1
