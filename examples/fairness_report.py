#!/usr/bin/env python
"""Fairness extension (paper §6 future work): per-user/VC fairness report.

The paper lists fairness as the first direction for extending Lucid.  This
example computes the standard fairness quantities over a simulated Venus
trace for Lucid and Tiresias: Jain's index over per-user and per-VC
average slowdowns, the Themis-style finish-time fairness distribution, and
a starvation indicator.

Run:  python examples/fairness_report.py
"""

from repro import Simulator, TraceGenerator, VENUS, make_scheduler
from repro.analysis import (
    ascii_table,
    finish_time_fairness,
    starvation_ratio,
    user_fairness,
    vc_fairness,
)


def run(scheduler_name: str, n_jobs: int = 1200):
    generator = TraceGenerator(VENUS.with_jobs(n_jobs))
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    return Simulator(cluster, jobs,
                     make_scheduler(scheduler_name, history)).run()


def main() -> None:
    rows = []
    for name in ("lucid", "tiresias", "fifo"):
        print(f"simulating {name} ...")
        result = run(name)
        rho = finish_time_fairness(result)
        rows.append([
            name,
            user_fairness(result),
            vc_fairness(result),
            rho["mean"],
            rho["p95"],
            starvation_ratio(result),
        ])
    print()
    print(ascii_table(
        ["scheduler", "user fairness (Jain)", "VC fairness (Jain)",
         "mean slowdown", "p95 slowdown", "max/mean queue"],
        rows, title="Fairness report on a synthetic Venus trace"))
    print("\nJain's index: 1.0 = perfectly even treatment across groups.")


if __name__ == "__main__":
    main()
