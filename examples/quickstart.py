#!/usr/bin/env python
"""Quickstart: schedule a synthetic Venus trace with Lucid.

Generates a scaled-down SenseTime-Venus trace (Table 2 of the paper),
trains Lucid's interpretable models on the preceding months of history,
replays the trace through the discrete-event simulator, and prints the
headline metrics next to a FIFO run of the identical trace.

Run:  python examples/quickstart.py
"""

from repro import Simulator, TraceGenerator, VENUS, make_scheduler
from repro.analysis import ascii_table


def run(scheduler_name: str, n_jobs: int = 800):
    spec = VENUS.with_jobs(n_jobs)
    generator = TraceGenerator(spec)
    cluster = generator.build_cluster()
    history = generator.generate_history()  # trains the learned models
    jobs = generator.generate()
    scheduler = make_scheduler(scheduler_name, history)
    print(f"Simulating {len(jobs)} jobs on {cluster.n_gpus} GPUs "
          f"({len(cluster.vcs)} VCs) under {scheduler_name} ...")
    return Simulator(cluster, jobs, scheduler).run()


def main() -> None:
    lucid = run("lucid")
    fifo = run("fifo")

    rows = []
    for name, result in (("lucid", lucid), ("fifo", fifo)):
        summary = result.summary()
        rows.append([
            name,
            summary["avg_jct_hrs"],
            summary["avg_queue_hrs"],
            summary["p999_queue_hrs"],
            summary["gpu_busy"],
            summary["profiler_finish_rate"],
        ])
    print()
    print(ascii_table(
        ["scheduler", "avg JCT (h)", "avg queue (h)", "p99.9 queue (h)",
         "GPU busy", "profiler finish"],
        rows, title="Lucid vs FIFO on a synthetic Venus trace"))
    print(f"\nLucid improves average JCT by "
          f"{fifo.avg_jct / lucid.avg_jct:.1f}x over FIFO "
          f"(the paper reports 5.2-7.9x at full scale).")


if __name__ == "__main__":
    main()
