#!/usr/bin/env python
"""Heterogeneous GPU scheduling (paper §6 future work).

Builds a cluster mixing four GPU generations (K80 → A100, Figure 1b) and
compares type-blind Lucid against the generation-aware extension, which
places each job on the slowest generation whose extra runtime stays within
tolerance — long jobs hold out for fast silicon, short debugging jobs soak
up the legacy racks.

Run:  python examples/heterogeneous_cluster.py
"""

from repro import Simulator, TraceGenerator
from repro.analysis import ascii_table
from repro.cluster.hetero import (
    A100,
    K80,
    RTX3090,
    V100,
    build_heterogeneous_cluster,
    node_speed,
)
from repro.core import LucidScheduler
from repro.core.hetero_lucid import HeteroLucidScheduler
from repro.traces import TraceSpec

SPEC = TraceSpec(
    name="hetero-demo", n_nodes=8, n_vcs=1, n_jobs=400, full_n_jobs=400,
    mean_duration=2500.0, span_days=0.5, n_users=16, seed=555,
)

LAYOUT = {"vc01": [(K80, 4), (V100, 2), (RTX3090, 1), (A100, 1)]}


def run(scheduler_cls):
    generator = TraceGenerator(SPEC)
    history = generator.generate_history()
    jobs = generator.generate()
    cluster = build_heterogeneous_cluster(LAYOUT)
    return Simulator(cluster, jobs, scheduler_cls(history)).run()


def main() -> None:
    cluster = build_heterogeneous_cluster(LAYOUT)
    print("Cluster layout:")
    for node in cluster.nodes:
        print(f"  node {node.node_id}: {node.gpu_type.name:8s} "
              f"(speed {node_speed(node):.2f}x, "
              f"{node.gpus[0].memory_mb / 1024:.0f} GB)")
    print()

    rows = []
    for name, cls in (("lucid (type-blind)", LucidScheduler),
                      ("lucid-hetero (aware)", HeteroLucidScheduler)):
        print(f"simulating {name} ...")
        result = run(cls)
        rows.append([name, result.avg_jct / 3600.0,
                     result.avg_queue_delay / 3600.0,
                     result.utilization.gpu_busy])
    print()
    print(ascii_table(
        ["scheduler", "avg JCT (h)", "avg queue (h)", "GPU busy"],
        rows, title="Type-blind vs generation-aware Lucid"))
    print("\nThe aware variant keeps long jobs off the K80s (0.25x) and "
          "lets short\ndebugging jobs absorb them — the paper's proposed "
          "'heterogeneous GPU\nselection by more fine-grained profiling'.")


if __name__ == "__main__":
    main()
