#!/usr/bin/env python
"""Compare all six schedulers on one cluster (a mini Table 4).

Replays the same synthetic trace through FIFO, SJF (oracle), QSSF, Horus,
Tiresias and Lucid, then prints average JCT, queuing delay, tail queuing
and utilization — the columns of the paper's Table 4.

Run:  python examples/compare_schedulers.py [venus|saturn|philly]
"""

import sys
import time

from repro import Simulator, TraceGenerator, get_spec, make_scheduler
from repro.analysis import ascii_table

SCHEDULERS = ["fifo", "sjf", "qssf", "horus", "tiresias", "lucid"]


def main(cluster_name: str = "venus") -> None:
    spec = get_spec(cluster_name)
    rows = []
    for name in SCHEDULERS:
        generator = TraceGenerator(spec)
        cluster = generator.build_cluster()
        history = generator.generate_history()
        jobs = generator.generate()
        started = time.perf_counter()
        result = Simulator(cluster, jobs, make_scheduler(name, history)).run()
        elapsed = time.perf_counter() - started
        summary = result.summary()
        rows.append([
            name,
            summary["avg_jct_hrs"],
            summary["avg_queue_hrs"],
            summary["p999_queue_hrs"],
            summary["gpu_busy"],
            summary["gpu_shared"],
            int(summary["preemptions"]),
            elapsed,
        ])
        print(f"  {name}: done in {elapsed:.1f}s")

    print()
    print(ascii_table(
        ["scheduler", "avg JCT (h)", "avg queue (h)", "p99.9 queue (h)",
         "GPU busy", "GPU shared", "preemptions", "sim time (s)"],
        rows,
        title=f"Scheduler comparison on {spec.name} "
              f"({spec.n_jobs} jobs, {spec.n_gpus} GPUs)"))

    lucid_jct = rows[-1][1]
    print("\nSpeedups of Lucid over each baseline (paper: 5.2-7.9x vs FIFO, "
          "1.1-1.3x vs Tiresias):")
    for row in rows[:-1]:
        print(f"  vs {row[0]:9s}: {row[1] / lucid_jct:.2f}x")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "venus")
