#!/usr/bin/env python
"""Guided system tuning with the System Tuner (§3.6.1).

Uses last month's trace to recommend profiler settings, compares the
recommendation against a heuristic default by simulation, and applies the
monotonic-shape constraint to the duration estimator — the transparent
tuning workflow the paper demonstrates in §4.6.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import Simulator, TraceGenerator, VENUS
from repro.analysis import ascii_table
from repro.core import LucidConfig, LucidScheduler, SystemTuner


def simulate(config: LucidConfig, n_jobs: int = 800):
    generator = TraceGenerator(VENUS.with_jobs(n_jobs))
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    scheduler = LucidScheduler(history, config=config)
    return Simulator(cluster, jobs, scheduler).run()


def main() -> None:
    generator = TraceGenerator(VENUS.with_jobs(800))
    history = generator.generate_history()
    durations = [j.duration for j in history]
    span = (max(j.submit_time for j in history)
            - min(j.submit_time for j in history))

    t_prof = SystemTuner.recommend_t_prof(durations)
    nodes = SystemTuner.recommend_profiler_nodes(history, t_prof, span)
    print("System Tuner recommendations from last month's trace:")
    print(f"  T_prof          : {t_prof:.0f} s "
          f"(covers ~45% of historical jobs)")
    print(f"  profiler nodes  : {nodes} x 8-GPU servers")
    print(f"  binder threshold grid to scan: "
          f"{SystemTuner.binder_threshold_grid()[:4]} ...\n")

    print("Simulating heuristic vs tuned profiler configuration ...")
    heuristic = simulate(LucidConfig(t_prof=600.0, profiler_nodes=1,
                                     time_aware_scaling=False))
    tuned = simulate(LucidConfig(t_prof=t_prof, profiler_nodes=nodes))

    rows = []
    for name, result in (("heuristic (600s, 1 node)", heuristic),
                         (f"tuned ({t_prof:.0f}s, {nodes} nodes)", tuned)):
        profiled = [r for r in result.records if r.finished_in_profiler]
        rows.append([
            name,
            result.avg_jct / 3600,
            result.avg_queue_delay / 3600,
            result.profiler_finish_rate(),
            float(np.mean([r.queue_delay for r in profiled])) if profiled else 0.0,
        ])
    print(ascii_table(
        ["configuration", "avg JCT (h)", "avg queue (h)",
         "profiler finish rate", "profiled-job queue (s)"],
        rows, precision=3))
    print("\n(paper §4.6: guided tuning reduced profiling-stage queuing "
          "2.8-8.7x vs heuristic settings)")


if __name__ == "__main__":
    main()
