#!/usr/bin/env python
"""Characterize job-packing interference (Figures 2, 3 and 5).

Measures every Table-1 jobpair combination on the colocation model,
reproduces the accumulated-utilization/speed relationship, the
representative ResNet-18 pairings, the GPU-count invariance, and finally
shows which pairs Lucid's Indolent Packing accepts (GSS <= 2) versus
rejects — including the interference-free rate the paper reports (98.1%).

Run:  python examples/packing_analysis.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import PackingAnalyzeModel
from repro.workloads import (
    InterferenceModel,
    WorkloadConfig,
    get_profile,
    measure_all_pairs,
)


def figure2a(measurements) -> None:
    print("Figure 2a — speed vs accumulated GPU utilization:")
    utils = np.array([m.accumulated_util for m in measurements])
    speeds = np.array([m.average_speed for m in measurements])
    rows = []
    for lo in range(0, 200, 25):
        mask = (utils >= lo) & (utils < lo + 25)
        if mask.any():
            rows.append([f"{lo}-{lo + 25}%", int(mask.sum()),
                         float(speeds[mask].mean())])
    print(ascii_table(["accumulated util", "pairs", "mean speed"], rows))
    at_100 = speeds[(utils > 90) & (utils < 110)].mean()
    print(f"  speed near 100% accumulated util: {at_100:.2f} "
          "(paper: ~0.92)\n")


def figure3a(model: InterferenceModel) -> None:
    print("Figure 3a — colocating with ResNet-18 (batch 64):")
    resnet18 = get_profile(WorkloadConfig("ResNet-18", 64, False))
    rows = []
    for partner in ("PointNet", "PPO", "LSTM", "DCGAN", "ResNet-18"):
        config = WorkloadConfig(partner, 64, False)
        speeds = model.pair_speeds(resnet18, get_profile(config),
                                   pair_key=("ResNet-18", partner))
        rows.append([f"ResNet-18 + {partner}", speeds.first, speeds.second])
    print(ascii_table(["pair", "ResNet-18 speed", "partner speed"], rows))
    print("  (paper: PointNet/PPO nearly free; DCGAN/LSTM cost ~40%)\n")


def indolent_packing(measurements) -> None:
    print("Figure 5 — Indolent Packing decisions (GSS budget = 2):")
    packing_model = PackingAnalyzeModel().fit(InterferenceModel())
    packable, rejected = [], []
    for m in measurements:
        score = (packing_model.sharing_score(get_profile(m.config_a))
                 + packing_model.sharing_score(get_profile(m.config_b)))
        (packable if score <= 2 else rejected).append(m)
    threshold = 0.85
    good = sum(1 for m in packable if m.average_speed >= threshold)
    rows = [
        ["packable (GSS <= 2)", len(packable),
         float(np.mean([m.average_speed for m in packable]))],
        ["rejected (GSS > 2)", len(rejected),
         float(np.mean([m.average_speed for m in rejected]))],
    ]
    print(ascii_table(["decision", "pairs", "mean speed"], rows))
    print(f"  interference-free rate of packable pairs "
          f"(speed >= {threshold}): {good / max(1, len(packable)):.1%} "
          "(paper: 98.1%)")
    opportunities = sum(1 for m in measurements
                        if m.average_speed >= threshold)
    found = sum(1 for m in packable if m.average_speed >= threshold)
    print(f"  packing opportunities captured: "
          f"{found / max(1, opportunities):.1%} (paper: 87.0%)\n")


def main() -> None:
    model = InterferenceModel()
    measurements = measure_all_pairs(model)
    print(f"Measured {len(measurements)} feasible jobpair combinations "
          "across all Table-1 configurations.\n")
    figure2a(measurements)
    figure3a(model)
    indolent_packing(measurements)


if __name__ == "__main__":
    main()
