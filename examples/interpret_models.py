#!/usr/bin/env python
"""Inspect Lucid's interpretable models (Figures 6 and 7 of the paper).

Trains the three models exactly as the scheduler does and prints:

* the Packing Analyze Model's learned decision tree and Gini feature
  importances (Figure 6),
* the Throughput Predict Model's global feature importances and the
  learned hour-of-day shape function (Figures 7a/7b),
* a local, per-feature breakdown of one Workload Estimate Model duration
  prediction (Figure 7c).

Run:  python examples/interpret_models.py
"""

import numpy as np

from repro import InterferenceModel, TraceGenerator, VENUS
from repro.analysis import ascii_table
from repro.core import (
    CLASS_NAMES,
    PackingAnalyzeModel,
    ThroughputPredictModel,
    WorkloadEstimateModel,
)


def show_packing_model() -> None:
    print("=" * 72)
    print("Packing Analyze Model (Figure 6): pruned decision tree")
    print("=" * 72)
    model = PackingAnalyzeModel().fit(InterferenceModel())
    print(model.explain_text())
    print()
    print(ascii_table(["feature", "Gini importance"],
                      model.feature_importances(),
                      title="Feature importances", precision=3))
    print(f"\nTraining accuracy: {model.train_accuracy_:.1%} "
          "(paper: DT reaches 94.1%)\n")


def show_throughput_model(history) -> ThroughputPredictModel:
    print("=" * 72)
    print("Throughput Predict Model (Figures 7a/7b): GA2M time series")
    print("=" * 72)
    model = ThroughputPredictModel().fit_events(
        [j.submit_time for j in history])
    explanation = model.explain_global()
    print(ascii_table(["feature", "avg |score|"],
                      explanation.top_features(8),
                      title="Global feature importances (Figure 7a)",
                      precision=3))
    edges, values = model.hour_shape()
    print("\nLearned hour-of-day shape function (Figure 7b):")
    bins = np.concatenate([[0.0], edges])
    bar_scale = max(1e-9, np.abs(values).max())
    for lo, score in zip(bins, values):
        bar = "#" * int(24 * abs(score) / bar_scale)
        sign = "+" if score >= 0 else "-"
        print(f"  hour >= {lo:5.1f}: {sign}{abs(score):7.2f} {bar}")
    return model


def show_estimator(history, jobs) -> None:
    print()
    print("=" * 72)
    print("Workload Estimate Model (Figure 7c): local explanation")
    print("=" * 72)
    model = WorkloadEstimateModel().fit(history)
    job = jobs[len(jobs) // 2]
    job.measured_profile = job.profile
    prediction = model.predict(job)
    local = model.explain_local(job)
    print(f"Job {job.name!r} by {job.user} ({job.gpu_num} GPU(s))")
    print(f"  predicted duration: {prediction / 3600:.2f} h "
          f"(actual: {job.duration / 3600:.2f} h)")
    print(f"  GA2M intercept (log-seconds): {local.intercept:+.3f}")
    rows = [(name, value, score)
            for name, value, score in local.sorted_by_magnitude()]
    print(ascii_table(["feature", "value", "score (log-s)"], rows,
                      precision=3))


def main() -> None:
    generator = TraceGenerator(VENUS.with_jobs(1200))
    history = generator.generate_history()
    jobs = generator.generate()
    show_packing_model()
    show_throughput_model(history)
    show_estimator(history, jobs)


if __name__ == "__main__":
    main()
